"""Scenario presets: deterministic generators of simulation traces.

Each scenario turns ``(n_users, n_events, seed)`` — plus, for ``replay``, a
fitted train/test split — into a :class:`~repro.simulate.events.Trace`.  All
randomness flows from a fixed ``SeedSequence`` spawn layout (stream 0 drives
timestamps, stream 1 drives user draws), so a scenario is a pure function of
its arguments: same inputs, byte-identical trace, on any machine or backend.

User pools follow one convention across scenarios: the *cold pool* is the
last ``cold_fraction`` (default 20%) of the user universe, reserved for
cold-start arrivals; the *active pool* is everyone else; the *hot pool* —
used by ``burst`` — is the first 5% of the active pool, modelling the small
head of users that drives traffic spikes.

Scenario catalog
----------------
``steady``
    Homogeneous Poisson arrivals (exponential inter-arrival times, unit
    rate) with users drawn uniformly from the active pool.
``burst``
    Steady traffic whose middle third collapses to a 10x arrival rate and
    concentrates on the hot pool — the popularity-feedback stress test.
``coldstart``
    Steady start, then a wave (25% of events) of first-time arrivals drawn
    from the cold pool, then mixed traffic over the full universe.
``replay``
    Re-plays the held-out test interactions of a fitted split in a seeded
    random order with synthesized exponential timestamps (the source data
    carries no timestamps of its own), capped at ``n_events``.
"""

from __future__ import annotations

import numpy as np

from repro.data.split import TrainTestSplit
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulate.events import Trace, label_kinds

#: Names accepted by :func:`build_trace` / the ``--scenario`` CLI flag.
SCENARIOS = ("steady", "burst", "coldstart", "replay")

#: Fraction of the user universe reserved for cold-start arrivals.
COLD_FRACTION = 0.2

#: Fraction of the active pool treated as the burst-driving head.
HOT_FRACTION = 0.05


def _pools(n_users: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(active, cold, hot) user pools; every pool is non-empty."""
    n_cold = min(max(1, int(round(n_users * COLD_FRACTION))), n_users - 1)
    active = np.arange(n_users - n_cold, dtype=np.int64)
    cold = np.arange(n_users - n_cold, n_users, dtype=np.int64)
    n_hot = max(1, int(round(active.size * HOT_FRACTION)))
    return active, cold, active[:n_hot]


def _streams(seed: int, count: int = 3) -> list[np.random.Generator]:
    """The scenario's fixed rng layout, derived from one root seed."""
    return [
        np.random.default_rng(sequence)
        for sequence in np.random.SeedSequence(seed).spawn(count)
    ]


def _check_args(n_users: int, n_events: int) -> None:
    if n_users < 2:
        raise ConfigurationError(f"scenarios need n_users >= 2, got {n_users}")
    if n_events < 1:
        raise ConfigurationError(f"n_events must be >= 1, got {n_events}")


def _steady(n_users: int, n_items: int, n_events: int, seed: int) -> Trace:
    time_rng, user_rng, _ = _streams(seed)
    active, cold, _ = _pools(n_users)
    timestamps = np.cumsum(time_rng.exponential(1.0, size=n_events))
    users = user_rng.choice(active, size=n_events, replace=True)
    return Trace(
        scenario="steady",
        seed=seed,
        n_users=n_users,
        n_items=n_items,
        timestamps=timestamps,
        users=users,
        kinds=label_kinds(users, cold),
    )


def _burst(n_users: int, n_items: int, n_events: int, seed: int) -> Trace:
    time_rng, user_rng, _ = _streams(seed)
    active, cold, hot = _pools(n_users)
    start, stop = n_events // 3, 2 * n_events // 3
    gaps = time_rng.exponential(1.0, size=n_events)
    gaps[start:stop] *= 0.1  # the spike: 10x arrival rate
    users = user_rng.choice(active, size=n_events, replace=True)
    if stop > start:
        users[start:stop] = user_rng.choice(hot, size=stop - start, replace=True)
    return Trace(
        scenario="burst",
        seed=seed,
        n_users=n_users,
        n_items=n_items,
        timestamps=np.cumsum(gaps),
        users=users,
        kinds=label_kinds(users, cold),
    )


def _coldstart(n_users: int, n_items: int, n_events: int, seed: int) -> Trace:
    time_rng, user_rng, _ = _streams(seed)
    active, cold, _ = _pools(n_users)
    wave_start = int(n_events * 0.6)
    wave_stop = min(n_events, wave_start + max(1, int(n_events * 0.25)))
    users = user_rng.choice(active, size=n_events, replace=True)
    if wave_stop > wave_start:
        users[wave_start:wave_stop] = user_rng.choice(
            cold, size=wave_stop - wave_start, replace=True
        )
    if wave_stop < n_events:  # mixed tail over the full universe
        users[wave_stop:] = user_rng.integers(0, n_users, size=n_events - wave_stop)
    return Trace(
        scenario="coldstart",
        seed=seed,
        n_users=n_users,
        n_items=n_items,
        timestamps=np.cumsum(time_rng.exponential(1.0, size=n_events)),
        users=users,
        kinds=label_kinds(users, cold),
    )


def _replay(
    n_users: int, n_items: int, n_events: int, seed: int, split: TrainTestSplit
) -> Trace:
    test = split.test
    if test.n_ratings == 0:
        raise SimulationError("replay scenario needs a split with test interactions")
    time_rng, user_rng, _ = _streams(seed)
    _, cold, _ = _pools(n_users)
    order = user_rng.permutation(test.n_ratings)[: min(n_events, test.n_ratings)]
    users = test.user_indices[order]
    timestamps = np.cumsum(time_rng.exponential(1.0, size=order.size))
    return Trace(
        scenario="replay",
        seed=seed,
        n_users=n_users,
        n_items=n_items,
        timestamps=timestamps,
        users=users,
        kinds=label_kinds(users, cold),
    )


def build_trace(
    scenario: str,
    *,
    n_users: int,
    n_items: int,
    n_events: int,
    seed: int,
    split: TrainTestSplit | None = None,
) -> Trace:
    """Build the named scenario's trace (a pure function of its arguments)."""
    if not isinstance(scenario, str) or scenario.strip().lower() not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; available: {list(SCENARIOS)}"
        )
    scenario = scenario.strip().lower()
    _check_args(n_users, n_events)
    if scenario == "replay":
        if split is None:
            raise ConfigurationError(
                "the replay scenario needs a fitted split (pass a pipeline "
                "directory so the held-out test interactions are available)"
            )
        if split.test.n_users != n_users:
            raise SimulationError(
                f"replay split has {split.test.n_users} users but the source "
                f"serves {n_users}"
            )
        return _replay(n_users, n_items, n_events, int(seed), split)
    builder = {"steady": _steady, "burst": _burst, "coldstart": _coldstart}[scenario]
    return builder(n_users, n_items, n_events, int(seed))
