"""Ordered Sampling-based Locally Greedy (OSLG) — Algorithm 1 of the paper.

OSLG makes the sequential Locally Greedy optimizer scalable by exploiting the
user long-tail preference estimates twice:

1. **Sampling.**  A Gaussian KDE is fitted to the preference vector ``θ`` and
   a sample of ``S`` users is drawn from it, so the sequential pass only
   touches a representative subset of users.  The sequential complexity drops
   from ``O(|U|·|I|·N)`` to ``O(S·|I|·N)`` at the cost of ``O(S·|I|)`` memory
   for the stored coverage snapshots.
2. **Ordering.**  Sampled users are served in *increasing* θ order.  Early
   (popularity-leaning) users grab the established items; by the time the
   high-θ explorers are served, the dynamic coverage function has discounted
   those items and their value functions favour untouched long-tail items.

Every user outside the sample is assigned independently — and therefore
parallelizably — using the coverage snapshot of the sampled user whose θ is
closest to theirs.  This implementation exploits that independence: the
non-sampled users are scored and assigned in memory-bounded *blocks* of 2-D
array operations (snapshot-conditioned coverage rows, one exclusion mask, one
row-wise top-N per block), which is what makes the snapshot phase run at
matrix speed instead of Python-loop speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coverage.dynamic import DynamicCoverage
from repro.exceptions import ConfigurationError
from repro.ganc.kde import GaussianKDE
from repro.ganc.locally_greedy import (
    AccuracyScoreProvider,
    BatchAccuracyProvider,
    BatchExclusionProvider,
    ExclusionProvider,
    LocallyGreedyOptimizer,
)
from repro.ganc.value_function import combined_item_scores
from repro.parallel.executor import Executor, resolve_executor
from repro.parallel.tasks import SnapshotAssignTask
from repro.recommenders.base import FittedTopN
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.topn import iter_user_blocks, top_n_indices


@dataclass
class OSLGResult:
    """Output of an OSLG run.

    Attributes
    ----------
    top_n:
        The assigned top-N collection.
    sampled_users:
        Users that were processed sequentially, in processing order
        (increasing θ).
    snapshots:
        Coverage frequency snapshots ``F(θ_u)`` recorded after each sampled
        user, aligned with ``sampled_users``.
    """

    top_n: FittedTopN
    sampled_users: np.ndarray
    snapshots: np.ndarray


class OSLGOptimizer:
    """Algorithm 1: GANC optimization with ordered sampling.

    Parameters
    ----------
    coverage:
        A fitted :class:`~repro.coverage.dynamic.DynamicCoverage` instance.
    n:
        Top-N size.
    sample_size:
        Number of users processed sequentially (the paper's ``S``; 500 in the
        experiments).  Values larger than the user count fall back to a full
        sequential pass.
    bandwidth:
        KDE bandwidth rule or value.
    seed:
        Seed for the KDE sampling step.
    """

    def __init__(
        self,
        coverage: DynamicCoverage,
        n: int,
        *,
        sample_size: int = 500,
        bandwidth: float | str = "silverman",
        seed: SeedLike = None,
    ) -> None:
        if not isinstance(coverage, DynamicCoverage):
            raise ConfigurationError(
                "OSLG requires the dynamic coverage recommender; "
                f"got {type(coverage).__name__}"
            )
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if sample_size < 1:
            raise ConfigurationError(f"sample_size must be >= 1, got {sample_size}")
        self.coverage = coverage
        self.n = int(n)
        self.sample_size = int(sample_size)
        self.bandwidth = bandwidth
        self._seed = seed

    # ------------------------------------------------------------------ #
    def run(
        self,
        theta: np.ndarray,
        accuracy_scores: AccuracyScoreProvider,
        exclusions: ExclusionProvider,
        *,
        accuracy_matrix: BatchAccuracyProvider | None = None,
        exclusion_pairs: BatchExclusionProvider | None = None,
        block_size: int | None = None,
        executor: Executor | None = None,
        n_jobs: int | None = None,
    ) -> OSLGResult:
        """Execute Algorithm 1 and return the assigned collection.

        The sequential sampled pass uses the per-user providers; the
        snapshot-assignment phase processes the remaining users in blocks and
        prefers the batched providers when given, falling back to stacking
        the per-user ones (same rows, so the result is identical).  The
        snapshot blocks are mutually independent — exactly the parallelism
        the paper points out — and fan out to ``executor``/``n_jobs``
        workers with byte-identical results on every backend.
        """
        theta = np.asarray(theta, dtype=np.float64)
        n_users = theta.size
        if n_users == 0:
            raise ConfigurationError("cannot optimize an empty user set")
        rng = ensure_rng(self._seed)

        sampled = self._sample_users(theta, rng)
        # Line 3: sort the sample in increasing long-tail preference.
        sampled = sampled[np.argsort(theta[sampled], kind="stable")]

        out = np.full((n_users, self.n), -1, dtype=np.int64)
        snapshots = np.zeros((sampled.size, self.coverage.n_items), dtype=np.float64)
        greedy = LocallyGreedyOptimizer(self.coverage, self.n)

        # Lines 4-10: sequential pass over the sampled users.
        for position, user in enumerate(sampled):
            items = greedy.assign_user(
                int(user), float(theta[user]), accuracy_scores(int(user)), exclusions(int(user))
            )
            out[user, : items.size] = items
            self.coverage.update(items)
            snapshots[position] = self.coverage.frequencies

        # Lines 11-15: every remaining user reuses the snapshot of the nearest
        # sampled θ; assignments are mutually independent, so whole blocks are
        # scored and selected as 2-D operations.
        remaining = np.setdiff1d(np.arange(n_users), sampled, assume_unique=False)
        if remaining.size:
            if accuracy_matrix is None:
                accuracy_matrix = self._stacked_provider(accuracy_scores)
            if exclusion_pairs is None:
                exclusion_pairs = self._stacked_exclusions(exclusions)
            task = SnapshotAssignTask(
                theta, theta[sampled], snapshots, self.n, accuracy_matrix, exclusion_pairs
            )
            blocks = [remaining[block] for block in iter_user_blocks(remaining.size, block_size)]
            snapshot_executor = resolve_executor(executor, n_jobs)
            for users, rows in zip(blocks, snapshot_executor.map_blocks(task, blocks)):
                out[users] = rows

        return OSLGResult(
            top_n=FittedTopN(items=out),
            sampled_users=sampled,
            snapshots=snapshots,
        )

    @staticmethod
    def _stacked_provider(accuracy_scores: AccuracyScoreProvider) -> BatchAccuracyProvider:
        """Adapt a per-user score callable to the batched provider interface."""

        def matrix(users: np.ndarray) -> np.ndarray:
            """Stack the per-user accuracy closure into block rows."""
            return np.stack(
                [np.asarray(accuracy_scores(int(u)), dtype=np.float64) for u in users]
            )

        return matrix

    @staticmethod
    def _stacked_exclusions(exclusions: ExclusionProvider) -> BatchExclusionProvider:
        """Adapt a per-user exclusion callable to flattened block pairs."""

        def pairs(users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """Flatten the per-user exclusion closure into (rows, cols) pairs."""
            per_user = [np.asarray(exclusions(int(u)), dtype=np.int64) for u in users]
            counts = np.array([e.size for e in per_user], dtype=np.int64)
            if counts.sum() == 0:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty
            rows = np.repeat(np.arange(len(per_user), dtype=np.int64), counts)
            return rows, np.concatenate(per_user)

        return pairs

    # ------------------------------------------------------------------ #
    def _sample_users(self, theta: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Line 2: draw S users according to the KDE of θ.

        Each KDE draw is matched to the not-yet-selected user with the closest
        preference value, which yields a sample whose θ distribution follows
        the estimated density while still being a subset of real users.
        """
        n_users = theta.size
        size = min(self.sample_size, n_users)
        if size == n_users:
            return np.arange(n_users, dtype=np.int64)

        kde = GaussianKDE(theta, bandwidth=self.bandwidth)
        draws = np.sort(kde.sample(size, seed=rng))

        # Greedy nearest-user matching on the sorted preference values.
        order = np.argsort(theta, kind="stable")
        sorted_theta = theta[order]
        available = np.ones(n_users, dtype=bool)
        chosen: list[int] = []
        for draw in draws:
            idx = int(np.searchsorted(sorted_theta, draw))
            candidates = []
            left = idx - 1
            right = idx
            # Scan outwards for the nearest still-available user.
            while left >= 0 or right < n_users:
                if right < n_users and available[right]:
                    candidates.append(right)
                if left >= 0 and available[left]:
                    candidates.append(left)
                if candidates:
                    break
                left -= 1
                right += 1
            if not candidates:
                break
            best = min(candidates, key=lambda pos: abs(sorted_theta[pos] - draw))
            available[best] = False
            chosen.append(int(order[best]))
        return np.asarray(sorted(chosen), dtype=np.int64)

    def _assign_with_snapshot(
        self,
        user: int,
        theta_u: float,
        accuracy: np.ndarray,
        exclude: np.ndarray,
        frequencies: np.ndarray,
    ) -> np.ndarray:
        """Top-N selection against a frozen coverage snapshot (lines 12-14).

        Per-user reference of the blocked snapshot phase in :meth:`run`; kept
        for inspection and for the batch-vs-loop equivalence tests.
        """
        coverage_scores = DynamicCoverage.snapshot_scores(frequencies)
        values = combined_item_scores(accuracy, coverage_scores, theta_u)
        if np.asarray(exclude).size:
            values = values.copy()
            values[np.asarray(exclude, dtype=np.int64)] = -np.inf
        return top_n_indices(values, self.n)
