"""Ordered Sampling-based Locally Greedy (OSLG) — Algorithm 1 of the paper.

OSLG makes the sequential Locally Greedy optimizer scalable by exploiting the
user long-tail preference estimates twice:

1. **Sampling.**  A Gaussian KDE is fitted to the preference vector ``θ`` and
   a sample of ``S`` users is drawn from it, so the sequential pass only
   touches a representative subset of users.  The sequential complexity drops
   from ``O(|U|·|I|·N)`` to ``O(S·|I|·N)``.
2. **Ordering.**  Sampled users are served in *increasing* θ order.  Early
   (popularity-leaning) users grab the established items; by the time the
   high-θ explorers are served, the dynamic coverage function has discounted
   those items and their value functions favour untouched long-tail items.

This implementation runs both phases at matrix speed:

* The **sequential sampled pass** (lines 4–10) runs on the incremental
  engine of :mod:`repro.ganc.incremental`: accuracy rows prefetched as
  batched blocks, coverage scores blended from the delta-updated live
  :class:`~repro.coverage.state.CoverageState`, per-user work reduced to a
  θ-blend plus a masked argpartition top-N on preallocated buffers.
* The per-user **snapshots** ``F(θ_u)`` (line 9) are recorded as compact
  :class:`~repro.coverage.state.DeltaSnapshots` — O(S·N) memory instead of
  the historical dense O(S·|I|) matrix — and reconstruct bit-identically.
* Every user outside the sample is assigned independently (lines 11–15)
  against the snapshot of the sampled user whose θ is closest to theirs; the
  non-sampled users are scored and assigned in memory-bounded *blocks* of
  2-D array operations that fan out to executor workers.
"""

from __future__ import annotations

import numpy as np

from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.state import DeltaSnapshots
from repro.exceptions import ConfigurationError
from repro.ganc.incremental import SequentialAssigner, supports_incremental
from repro.ganc.kde import GaussianKDE, validate_bandwidth
from repro.ganc.locally_greedy import (
    AccuracyScoreProvider,
    BatchAccuracyProvider,
    BatchExclusionProvider,
    ExclusionProvider,
    LocallyGreedyOptimizer,
    stacked_accuracy_provider,
    stacked_exclusion_provider,
)
from repro.ganc.value_function import combined_item_scores
from repro.parallel.executor import Executor, resolve_executor
from repro.parallel.tasks import SnapshotAssignTask
from repro.recommenders.base import FittedTopN
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.topn import iter_user_blocks, top_n_indices


class OSLGResult:
    """Output of an OSLG run.

    Attributes
    ----------
    top_n:
        The assigned top-N collection.
    sampled_users:
        Users that were processed sequentially, in processing order
        (increasing θ).
    snapshot_log:
        Compact per-step snapshot record (base counts + assignment deltas),
        aligned with ``sampled_users`` — ``None`` when the run took the
        generic fallback for a ``DynamicCoverage`` subclass with custom
        counting semantics, in which case the dense matrix was captured
        directly.
    snapshots:
        The dense ``(S, n_items)`` frequency snapshot matrix ``F(θ_u)``,
        reconstructed (and cached) from ``snapshot_log`` on first access —
        byte-identical to the historical eagerly-stored array.
    """

    __slots__ = ("top_n", "sampled_users", "snapshot_log", "_snapshots")

    def __init__(
        self,
        top_n: FittedTopN,
        sampled_users: np.ndarray,
        snapshot_log: DeltaSnapshots | None = None,
        snapshots: np.ndarray | None = None,
    ) -> None:
        if snapshot_log is None and snapshots is None:
            raise ConfigurationError(
                "OSLGResult needs a snapshot_log or a dense snapshots matrix"
            )
        self.top_n = top_n
        self.sampled_users = sampled_users
        self.snapshot_log = snapshot_log
        self._snapshots = snapshots

    @property
    def snapshots(self) -> np.ndarray:
        """Dense snapshot matrix, materialized lazily from the delta log."""
        if self._snapshots is None:
            assert self.snapshot_log is not None
            self._snapshots = self.snapshot_log.dense()
        return self._snapshots

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        steps = (
            f"{self.snapshot_log.n_steps} step(s)"
            if self.snapshot_log is not None
            else f"dense {self._snapshots.shape}"
        )
        return (
            f"OSLGResult(top_n={self.top_n!r}, "
            f"sampled_users={self.sampled_users.size}, "
            f"snapshots={steps})"
        )


class OSLGOptimizer:
    """Algorithm 1: GANC optimization with ordered sampling.

    Parameters
    ----------
    coverage:
        A fitted :class:`~repro.coverage.dynamic.DynamicCoverage` instance.
    n:
        Top-N size.
    sample_size:
        Number of users processed sequentially (the paper's ``S``; 500 in the
        experiments).  Values larger than the user count fall back to a full
        sequential pass.
    bandwidth:
        KDE bandwidth rule or value; validated here, at construction time, so
        a typo'd rule fails naming the parameter instead of deep inside the
        sampling step.
    seed:
        Seed for the KDE sampling step.
    """

    def __init__(
        self,
        coverage: DynamicCoverage,
        n: int,
        *,
        sample_size: int = 500,
        bandwidth: float | str = "silverman",
        seed: SeedLike = None,
    ) -> None:
        if not isinstance(coverage, DynamicCoverage):
            raise ConfigurationError(
                "OSLG requires the dynamic coverage recommender; "
                f"got {type(coverage).__name__}"
            )
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if sample_size < 1:
            raise ConfigurationError(f"sample_size must be >= 1, got {sample_size}")
        self.coverage = coverage
        self.n = int(n)
        self.sample_size = int(sample_size)
        self.bandwidth = validate_bandwidth(bandwidth, parameter="bandwidth")
        self._seed = seed

    # ------------------------------------------------------------------ #
    def run(
        self,
        theta: np.ndarray,
        accuracy_scores: AccuracyScoreProvider,
        exclusions: ExclusionProvider,
        *,
        accuracy_matrix: BatchAccuracyProvider | None = None,
        exclusion_pairs: BatchExclusionProvider | None = None,
        block_size: int | None = None,
        executor: Executor | None = None,
        n_jobs: int | None = None,
    ) -> OSLGResult:
        """Execute Algorithm 1 and return the assigned collection.

        Both phases use the batched providers when given and adapt the
        per-user callables otherwise (identical rows, so the result is
        unchanged).  The sequential sampled pass runs on the incremental
        delta-updated engine; the snapshot blocks are mutually independent —
        exactly the parallelism the paper points out — and fan out to
        ``executor``/``n_jobs`` workers with byte-identical results on every
        backend.
        """
        theta = np.asarray(theta, dtype=np.float64)
        n_users = theta.size
        if n_users == 0:
            raise ConfigurationError("cannot optimize an empty user set")
        rng = ensure_rng(self._seed)

        sampled = self._sample_users(theta, rng)
        # Line 3: sort the sample in increasing long-tail preference.
        sampled = sampled[np.argsort(theta[sampled], kind="stable")]

        if accuracy_matrix is None:
            accuracy_matrix = stacked_accuracy_provider(accuracy_scores)
        if exclusion_pairs is None:
            exclusion_pairs = stacked_exclusion_provider(exclusions)

        out = np.full((n_users, self.n), -1, dtype=np.int64)

        # Lines 4-10: sequential pass over the sampled users.
        log: DeltaSnapshots | None = None
        dense_snapshots: np.ndarray | None = None
        if supports_incremental(self.coverage):
            log = DeltaSnapshots(self.coverage.frequencies)
            record = log.record
            assigner = SequentialAssigner(self.coverage, self.n, block_size=block_size)
            assigner.run(
                out,
                sampled,
                theta,
                accuracy_matrix,
                exclusion_pairs,
                on_assign=lambda _user, items: record(items),
            )
        else:
            # A DynamicCoverage subclass may count assignments however it
            # likes, so a delta replay cannot stand in for its state —
            # capture the dense frequency snapshots directly, as the
            # historical implementation did.
            dense_snapshots = np.zeros(
                (sampled.size, self.coverage.n_items), dtype=np.float64
            )
            greedy = LocallyGreedyOptimizer(self.coverage, self.n)
            for position, user in enumerate(sampled):
                items = greedy.assign_user(
                    int(user),
                    float(theta[user]),
                    accuracy_scores(int(user)),
                    exclusions(int(user)),
                )
                out[user, : items.size] = items
                self.coverage.update(items)
                dense_snapshots[position] = self.coverage.frequencies

        # Lines 11-15: every remaining user reuses the snapshot of the nearest
        # sampled θ; assignments are mutually independent, so whole blocks are
        # scored and selected as 2-D operations.
        remaining = np.setdiff1d(np.arange(n_users), sampled, assume_unique=False)
        if remaining.size:
            task = SnapshotAssignTask(
                theta,
                theta[sampled],
                log if log is not None else dense_snapshots,
                self.n,
                accuracy_matrix,
                exclusion_pairs,
            )
            blocks = [remaining[block] for block in iter_user_blocks(remaining.size, block_size)]
            snapshot_executor = resolve_executor(executor, n_jobs)
            for users, rows in zip(blocks, snapshot_executor.map_blocks(task, blocks)):
                out[users] = rows

        return OSLGResult(
            top_n=FittedTopN(items=out),
            sampled_users=sampled,
            snapshot_log=log,
            snapshots=dense_snapshots,
        )

    # ------------------------------------------------------------------ #
    def _sample_users(self, theta: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Line 2: draw S users according to the KDE of θ.

        Each KDE draw is matched to the not-yet-selected user with the closest
        preference value, which yields a sample whose θ distribution follows
        the estimated density while still being a subset of real users.
        """
        n_users = theta.size
        size = min(self.sample_size, n_users)
        if size == n_users:
            return np.arange(n_users, dtype=np.int64)

        kde = GaussianKDE(theta, bandwidth=self.bandwidth)
        draws = np.sort(kde.sample(size, seed=rng))

        # Greedy nearest-user matching on the sorted preference values.
        order = np.argsort(theta, kind="stable")
        sorted_theta = theta[order]
        available = np.ones(n_users, dtype=bool)
        chosen: list[int] = []
        for draw in draws:
            idx = int(np.searchsorted(sorted_theta, draw))
            candidates = []
            left = idx - 1
            right = idx
            # Scan outwards for the nearest still-available user.
            while left >= 0 or right < n_users:
                if right < n_users and available[right]:
                    candidates.append(right)
                if left >= 0 and available[left]:
                    candidates.append(left)
                if candidates:
                    break
                left -= 1
                right += 1
            if not candidates:
                break
            best = min(candidates, key=lambda pos: abs(sorted_theta[pos] - draw))
            available[best] = False
            chosen.append(int(order[best]))
        return np.asarray(sorted(chosen), dtype=np.int64)

    def _assign_with_snapshot(
        self,
        user: int,
        theta_u: float,
        accuracy: np.ndarray,
        exclude: np.ndarray,
        frequencies: np.ndarray,
    ) -> np.ndarray:
        """Top-N selection against a frozen coverage snapshot (lines 12-14).

        Per-user reference of the blocked snapshot phase in :meth:`run`; kept
        for inspection and for the batch-vs-loop equivalence tests.
        """
        coverage_scores = DynamicCoverage.snapshot_scores(frequencies)
        values = combined_item_scores(accuracy, coverage_scores, theta_u)
        if np.asarray(exclude).size:
            values = values.copy()
            values[np.asarray(exclude, dtype=np.int64)] = -np.inf
        return top_n_indices(values, self.n)
