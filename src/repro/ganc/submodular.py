"""Objective evaluation and small-instance exact optimization.

With the dynamic coverage recommender the aggregate GANC objective (Eq. III.2)
is a submodular, monotone increasing function of the set of user-item pairs,
subject to a partition matroid (each user receives at most N items).  Locally
Greedy (Fisher et al., 1978) therefore guarantees at least half of the optimal
value.  This module provides

* :func:`dynamic_coverage_value` — evaluate the objective for an explicit
  collection of top-N sets,
* :func:`collection_value` — the same for static (Rand/Stat) coverage,
* :func:`brute_force_best_collection` — exhaustive search for tiny instances,
  used by the tests to validate the 1/2-approximation bound and the
  submodularity property experimentally.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def collection_value(
    assignments: Mapping[int, np.ndarray],
    theta: np.ndarray,
    accuracy_scores: Mapping[int, np.ndarray],
    coverage_scores: Mapping[int, np.ndarray],
) -> float:
    """Aggregate value of a collection under *static* coverage scores.

    ``accuracy_scores[u]`` and ``coverage_scores[u]`` are per-item score
    vectors for user ``u``.
    """
    total = 0.0
    for user, items in assignments.items():
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            continue
        t = float(theta[user])
        total += (1.0 - t) * float(accuracy_scores[user][items].sum())
        total += t * float(coverage_scores[user][items].sum())
    return total


def dynamic_coverage_value(
    assignments: Mapping[int, np.ndarray],
    theta: np.ndarray,
    accuracy_scores: Mapping[int, np.ndarray],
    *,
    user_order: Sequence[int] | None = None,
) -> float:
    """Aggregate objective with the Dyn coverage function.

    The coverage part of the objective only depends on the final assignment
    frequencies: if item ``i`` is recommended ``f_i`` times in total, its
    coverage contribution is ``Σ_{k=0}^{f_i − 1} 1/sqrt(k + 1)`` — but each of
    those increments is weighted by the θ of the user who received it, and the
    weight of an increment depends on the order users are processed in.  This
    evaluator therefore replays the assignment in ``user_order`` (defaults to
    increasing user index), exactly mirroring how the sequential optimizer
    accumulates value.
    """
    if user_order is None:
        user_order = sorted(assignments)
    # Dict-keyed counts, not an array: assignments may carry sentinel ids
    # (e.g. the -1 padding of short FittedTopN rows) that must count as
    # their own bucket rather than alias a real item's frequency.
    frequencies: dict[int, int] = {}
    total = 0.0
    for user in user_order:
        items = np.asarray(assignments[user], dtype=np.int64)
        if items.size == 0:
            continue
        t = float(theta[user])
        total += (1.0 - t) * float(accuracy_scores[user][items].sum())
        for item in items.tolist():
            count = frequencies.get(item, 0)
            total += t / np.sqrt(count + 1.0)
            frequencies[item] = count + 1
    return float(total)


def brute_force_best_collection(
    n_users: int,
    n_items: int,
    n: int,
    theta: np.ndarray,
    accuracy_scores: Mapping[int, np.ndarray],
    *,
    candidates: Mapping[int, np.ndarray] | None = None,
) -> tuple[dict[int, np.ndarray], float]:
    """Exhaustively find the best collection under Dyn coverage.

    Only feasible for tiny instances (it enumerates every combination of
    per-user N-subsets); used in tests to check approximation bounds.

    Returns the best assignment and its objective value, where the objective
    is evaluated with the *set-function* semantics: coverage contributions use
    the final frequencies and the users' θ weights are applied in the
    enumeration order of the assignment.
    """
    if n_users < 1 or n_items < 1 or n < 1:
        raise ConfigurationError("n_users, n_items and n must all be >= 1")
    per_user_candidates: dict[int, list[tuple[int, ...]]] = {}
    for user in range(n_users):
        pool = (
            np.asarray(candidates[user], dtype=np.int64)
            if candidates is not None
            else np.arange(n_items, dtype=np.int64)
        )
        size = min(n, pool.size)
        per_user_candidates[user] = list(combinations(pool.tolist(), size))

    best_value = -np.inf
    best_assignment: dict[int, np.ndarray] = {}
    users = list(range(n_users))
    for choice in product(*(per_user_candidates[u] for u in users)):
        assignment = {u: np.asarray(sets, dtype=np.int64) for u, sets in zip(users, choice)}
        value = dynamic_coverage_value(assignment, theta, accuracy_scores)
        if value > best_value:
            best_value = value
            best_assignment = assignment
    return best_assignment, float(best_value)
