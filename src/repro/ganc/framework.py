"""The GANC facade: ``GANC(ARec, θ, CRec)`` behind a fit/recommend API.

A :class:`GANC` instance wires together the three components of the paper's
framework (Section III):

* an **accuracy recommender** — any fitted or unfitted
  :class:`~repro.recommenders.base.Recommender`; its unit-interval scores are
  the ``a(i)`` term,
* a **preference model** — any
  :class:`~repro.preferences.base.PreferenceModel` (or a precomputed θ
  vector); its estimates are the per-user mixing weights,
* a **coverage recommender** — Rand, Stat or Dyn; its scores are the ``c(i)``
  term.

With Rand or Stat coverage each user's value function is independent and the
exact greedy solution is a simple per-user top-N over the combined scores.
With Dyn coverage the users interact through the shared assignment counts and
the optimization runs either the exact Locally Greedy pass or the scalable
OSLG heuristic (Algorithm 1), selectable via ``optimizer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Union

import numpy as np

from repro.coverage.base import CoverageRecommender
from repro.coverage.dynamic import DynamicCoverage
from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError, NotFittedError
from repro.ganc.kde import validate_bandwidth
from repro.ganc.locally_greedy import LocallyGreedyOptimizer
from repro.ganc.oslg import OSLGOptimizer
from repro.ganc.value_function import UserValueFunction
from repro.parallel.executor import EXECUTOR_BACKENDS, effective_n_jobs, resolve_executor
from repro.parallel.handles import DatasetHandle
from repro.parallel.tasks import ExclusionPairsProvider, UnitScoresProvider
from repro.preferences.base import PreferenceModel, PreferenceResult
from repro.recommenders.base import FittedTopN, Recommender
from repro.utils.rng import SeedLike

PreferenceLike = Union[PreferenceModel, PreferenceResult, np.ndarray]
OptimizerName = Literal["auto", "oslg", "locally_greedy"]


@dataclass(frozen=True)
class GANCConfig:
    """Hyper-parameters of a GANC run.

    Attributes
    ----------
    sample_size:
        OSLG sample size S (500 in the paper's experiments).
    bandwidth:
        KDE bandwidth rule (``"scott"``/``"silverman"``) or a positive value
        for OSLG's preference-proportionate sampling; validated here at
        construction time so a typo'd rule fails naming the parameter
        instead of deep inside the KDE fit.
    optimizer:
        ``"oslg"``, ``"locally_greedy"``, or ``"auto"`` (OSLG whenever the
        coverage recommender is dynamic and the user count exceeds the sample
        size, exact otherwise).
    theta_order:
        Ordering of the sequential pass: ``"increasing"`` (the paper's
        choice), ``"decreasing"`` or ``"arbitrary"`` — exposed for the
        ordering ablation.
    seed:
        Seed for the KDE sampling step.
    block_size:
        Number of users scored per block by the batched assignment paths
        (``None`` uses :data:`repro.utils.topn.DEFAULT_BLOCK_SIZE`).  Peak
        memory of the independent phases is ``O(block_size × n_items)``.
    n_jobs:
        Workers the independent assignment phases (stateless-coverage
        assignment, OSLG snapshot phase) fan their user blocks out to.
        ``1`` (default) runs serially, ``-1`` uses every CPU.  Results are
        byte-identical for any worker count.
    backend:
        Executor backend for ``n_jobs > 1``: ``"thread"`` (default) or
        ``"process"`` (see :mod:`repro.parallel`).
    """

    sample_size: int = 500
    bandwidth: float | str = "silverman"
    optimizer: OptimizerName = "auto"
    theta_order: Literal["increasing", "decreasing", "arbitrary"] = "increasing"
    seed: SeedLike = None
    block_size: int | None = None
    n_jobs: int = 1
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {self.sample_size}"
            )
        validate_bandwidth(self.bandwidth, parameter="bandwidth")
        if self.block_size is not None and self.block_size < 1:
            raise ConfigurationError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        effective_n_jobs(self.n_jobs)  # validates the requested worker count
        if self.backend not in EXECUTOR_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {list(EXECUTOR_BACKENDS)}, got {self.backend!r}"
            )
        if self.optimizer not in ("auto", "oslg", "locally_greedy"):
            raise ConfigurationError(
                f"optimizer must be 'auto', 'oslg' or 'locally_greedy', got {self.optimizer!r}"
            )
        if self.theta_order not in ("increasing", "decreasing", "arbitrary"):
            raise ConfigurationError(
                f"theta_order must be 'increasing', 'decreasing' or 'arbitrary', "
                f"got {self.theta_order!r}"
            )


class GANC:
    """Generic top-N recommendation framework trading off accuracy, novelty, coverage.

    Parameters
    ----------
    accuracy:
        The accuracy recommender (``ARec``).  Fitted during :meth:`fit` if it
        is not already fitted on the same train data.
    preference:
        The long-tail preference component (``θ``): a preference model, a
        precomputed :class:`PreferenceResult`, or a plain array.
    coverage:
        The coverage recommender (``CRec``).
    config:
        Optimization hyper-parameters; see :class:`GANCConfig`.
    """

    def __init__(
        self,
        accuracy: Recommender,
        preference: PreferenceLike,
        coverage: CoverageRecommender,
        *,
        config: GANCConfig | None = None,
    ) -> None:
        self.accuracy = accuracy
        self.coverage = coverage
        self.config = config or GANCConfig()
        self._preference_input = preference
        self._theta: np.ndarray | None = None
        self._train: RatingDataset | None = None
        self.last_oslg_result_ = None

    # ------------------------------------------------------------------ #
    @property
    def template(self) -> str:
        """The paper's template string ``GANC(ARec, θ, CRec)``."""
        arec = type(self.accuracy).__name__
        if isinstance(self._preference_input, PreferenceModel):
            theta_name = self._preference_input.name
        elif isinstance(self._preference_input, PreferenceResult):
            theta_name = self._preference_input.model_name
        else:
            theta_name = "theta"
        return f"GANC({arec}, {theta_name}, {self.coverage.name})"

    @property
    def theta(self) -> np.ndarray:
        """The fitted per-user preference vector."""
        if self._theta is None:
            raise NotFittedError("GANC must be fitted before accessing theta")
        return self._theta

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._train is not None

    # ------------------------------------------------------------------ #
    def fit(self, train: RatingDataset) -> "GANC":
        """Fit the accuracy recommender, the preference model and the coverage state."""
        if not self.accuracy.is_fitted or self.accuracy.train_data is not train:
            self.accuracy.fit(train)
        self.coverage.fit(train)
        self._theta = self._resolve_theta(train)
        self._train = train
        return self

    def _resolve_theta(self, train: RatingDataset) -> np.ndarray:
        source = self._preference_input
        if isinstance(source, PreferenceModel):
            result = source.estimate(train)
            theta = result.theta
        elif isinstance(source, PreferenceResult):
            theta = source.theta
        else:
            theta = np.asarray(source, dtype=np.float64)
        if theta.shape != (train.n_users,):
            raise ConfigurationError(
                f"theta must have one entry per user ({train.n_users}), got shape {theta.shape}"
            )
        if theta.size and (theta.min() < 0 or theta.max() > 1):
            raise ConfigurationError("theta values must lie in [0, 1]")
        return theta

    # ------------------------------------------------------------------ #
    def value_function(self, user: int, n: int) -> UserValueFunction:
        """Materialize the value function of one user (mainly for inspection)."""
        self._check_fitted()
        return UserValueFunction(
            theta=float(self.theta[user]),
            accuracy_scores=self.accuracy.unit_scores(user, n),
            coverage_scores=self.coverage.scores(user),
        )

    def recommend_all(self, n: int) -> FittedTopN:
        """Assign a top-``n`` set to every user by maximizing Eq. III.2.

        All independent-user work — the whole assignment under stateless
        coverage, and the snapshot phase of OSLG — runs through the batched
        providers, i.e. as blocked matrix operations over
        ``config.block_size`` users at a time.

        Not safe for concurrent calls on the same instance when coverage is
        dynamic: the sequential optimizers reset and mutate the shared
        coverage state in place (callers that serve concurrently, like the
        artifact store's fallback path, serialize their builds).
        """
        self._check_fitted()
        assert self._train is not None
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        train = self._train

        def accuracy_scores(user: int) -> np.ndarray:
            """Unit accuracy scores a(i) of one user."""
            return self.accuracy.unit_scores(user, n)

        def exclusions(user: int) -> np.ndarray:
            """Train items of one user (excluded from top-N)."""
            return train.user_items(user)

        # Handle-backed batch providers: identical rows to the closures they
        # replace, but picklable, so the process backend can ship them.  Both
        # providers share one dataset handle, so workers rebuild the train
        # data once rather than once per provider.
        train_handle = DatasetHandle.capture(train)
        accuracy_matrix = UnitScoresProvider(self.accuracy, n, train_handle=train_handle)
        exclusion_pairs = ExclusionPairsProvider(train, handle=train_handle)
        executor = resolve_executor(None, self.config.n_jobs, self.config.backend)

        if self.coverage.is_dynamic:
            self.coverage.reset()
            optimizer_name = self._select_optimizer(train.n_users)
            if optimizer_name == "oslg":
                optimizer = OSLGOptimizer(
                    self.coverage,  # type: ignore[arg-type]
                    n,
                    sample_size=self.config.sample_size,
                    bandwidth=self.config.bandwidth,
                    seed=self.config.seed,
                )
                result = optimizer.run(
                    self.theta,
                    accuracy_scores,
                    exclusions,
                    accuracy_matrix=accuracy_matrix,
                    exclusion_pairs=exclusion_pairs,
                    block_size=self.config.block_size,
                    executor=executor,
                )
                self.last_oslg_result_ = result
                return result.top_n
            greedy = LocallyGreedyOptimizer(self.coverage, n)
            order = self._user_order(train.n_users)
            return greedy.run(
                self.theta,
                accuracy_scores,
                exclusions,
                user_order=order,
                n_users=train.n_users,
                accuracy_matrix=accuracy_matrix,
                exclusion_pairs=exclusion_pairs,
                block_size=self.config.block_size,
            )

        # Static coverage: user value functions are independent, so the exact
        # greedy assignment is a blocked 2-D top-N over the combined scores.
        greedy = LocallyGreedyOptimizer(self.coverage, n)
        return greedy.run_independent(
            self.theta,
            accuracy_matrix,
            exclusion_pairs,
            n_users=train.n_users,
            block_size=self.config.block_size,
            executor=executor,
        )

    def recommend(self, user: int, n: int) -> np.ndarray:
        """Top-``n`` set of a single user.

        For dynamic coverage this is a convenience that evaluates the user
        against the *current* coverage state; use :meth:`recommend_all` for
        the full collection the paper's objective optimizes.
        """
        self._check_fitted()
        assert self._train is not None
        value_function = self.value_function(user, n)
        return value_function.greedy_top_n(n, exclude=self._train.user_items(user))

    # ------------------------------------------------------------------ #
    def _select_optimizer(self, n_users: int) -> str:
        if self.config.optimizer != "auto":
            return self.config.optimizer
        if isinstance(self.coverage, DynamicCoverage) and n_users > self.config.sample_size:
            return "oslg"
        return "locally_greedy"

    def _user_order(self, n_users: int) -> list[int]:
        order = np.arange(n_users)
        if self.config.theta_order == "increasing":
            order = order[np.argsort(self.theta, kind="stable")]
        elif self.config.theta_order == "decreasing":
            order = order[np.argsort(-self.theta, kind="stable")]
        return [int(u) for u in order]

    def _check_fitted(self) -> None:
        if self._train is None:
            raise NotFittedError("GANC must be fitted before it can recommend")
