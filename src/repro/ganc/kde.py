"""Gaussian kernel density estimation for preference-proportionate sampling.

OSLG (Algorithm 1, line 2) approximates the probability density of the user
long-tail preference vector ``θ`` with a KDE and samples users from it, so the
sequential part of the optimization sees a representative cross-section of the
preference distribution.  This module implements a small, dependency-free 1-D
Gaussian KDE with the standard plug-in bandwidth rules (Scott / Silverman),
which the original paper obtains from the Sheather-Jones selector; for the
smooth, unimodal θ distributions involved the rules agree closely.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, ensure_rng

_SQRT_2PI = float(np.sqrt(2.0 * np.pi))

#: Plug-in bandwidth selection rules understood by :class:`GaussianKDE`.
BANDWIDTH_RULES = ("scott", "silverman")


def validate_bandwidth(bandwidth: float | str, *, parameter: str = "bandwidth") -> float | str:
    """Validate a KDE bandwidth rule or value at configuration time.

    Historically a typo'd rule string (``"silvermann"``) survived
    ``GANCConfig``/``OSLGOptimizer`` construction and only failed deep inside
    the KDE fit during the sampling step.  This validator is called at every
    construction site (config dataclasses, pipeline specs, CLI parsing) and
    raises :class:`ConfigurationError` naming ``parameter`` — the flag or
    field the bad value arrived through.  Returns the value unchanged.
    """
    if isinstance(bandwidth, str):
        if bandwidth.strip().lower() not in BANDWIDTH_RULES:
            raise ConfigurationError(
                f"{parameter} must be a positive number or one of "
                f"{'/'.join(BANDWIDTH_RULES)!s}, got {bandwidth!r}"
            )
        return bandwidth
    if isinstance(bandwidth, bool) or not isinstance(bandwidth, (int, float, np.floating, np.integer)):
        raise ConfigurationError(
            f"{parameter} must be a positive number or one of "
            f"{'/'.join(BANDWIDTH_RULES)!s}, got {bandwidth!r}"
        )
    value = float(bandwidth)
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{parameter} must be positive, got {value}")
    return bandwidth


class GaussianKDE:
    """One-dimensional Gaussian kernel density estimator.

    Parameters
    ----------
    data:
        Sample the density is estimated from (the user preference vector θ).
    bandwidth:
        Either a positive float, or one of ``"scott"`` / ``"silverman"``.
    """

    def __init__(self, data: np.ndarray, *, bandwidth: float | str = "silverman") -> None:
        samples = np.asarray(data, dtype=np.float64).ravel()
        if samples.size == 0:
            raise ConfigurationError("KDE requires at least one data point")
        self.data = samples
        self.bandwidth = self._resolve_bandwidth(bandwidth)

    def _resolve_bandwidth(self, bandwidth: float | str) -> float:
        if isinstance(bandwidth, str):
            rule = bandwidth.strip().lower()
            n = self.data.size
            std = float(np.std(self.data))
            iqr = float(np.subtract(*np.percentile(self.data, [75, 25])))
            # Robust spread estimate; fall back to a small constant for
            # degenerate (constant) samples so the KDE stays well-defined.
            spread = min(std, iqr / 1.349) if iqr > 0 else std
            if spread <= 0:
                spread = 0.01
            if rule == "scott":
                value = spread * n ** (-1.0 / 5.0)
            elif rule == "silverman":
                value = 0.9 * spread * n ** (-1.0 / 5.0)
            else:
                raise ConfigurationError(
                    f"unknown bandwidth rule {bandwidth!r}; use 'scott' or 'silverman'"
                )
            return max(value, 1e-3)
        value = float(bandwidth)
        if value <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {value}")
        return value

    # ------------------------------------------------------------------ #
    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Density estimate at ``points``."""
        pts = np.atleast_1d(np.asarray(points, dtype=np.float64))
        diffs = (pts[:, None] - self.data[None, :]) / self.bandwidth
        kernel = np.exp(-0.5 * diffs * diffs) / (_SQRT_2PI * self.bandwidth)
        return kernel.mean(axis=1)

    __call__ = evaluate

    def sample(
        self,
        size: int,
        *,
        seed: SeedLike = None,
        clip: tuple[float, float] | None = (0.0, 1.0),
    ) -> np.ndarray:
        """Draw ``size`` samples from the estimated density.

        Sampling picks a data point uniformly and perturbs it with Gaussian
        noise of the KDE bandwidth; ``clip`` keeps the draws inside the valid
        preference range.
        """
        if size < 0:
            raise ConfigurationError(f"size must be non-negative, got {size}")
        rng = ensure_rng(seed)
        centers = self.data[rng.integers(0, self.data.size, size=size)]
        draws = centers + rng.normal(0.0, self.bandwidth, size=size)
        if clip is not None:
            draws = np.clip(draws, clip[0], clip[1])
        return draws
