"""Incremental sequential assignment: the delta-updated core of GANC.

Both sequential optimizers — the exact Locally Greedy pass and OSLG's
sampled pass (Algorithm 1, lines 4–10) — walk users one at a time against the
*dynamic* coverage state.  Historically every step paid three full-width
prices: the user's accuracy row was fetched through a one-user batch, the
coverage score vector was re-derived as ``1 / sqrt(f + 1)`` over all items,
and the θ-blend allocated fresh arrays.  Mathematically, though, one step
only *changes* the N just-assigned items' counts.

:class:`SequentialAssigner` exploits that:

* accuracy rows are prefetched in blocks through the batched provider
  (``unit_scores_batch`` and friends from PR 1), so the per-user model call
  disappears;
* coverage scores come from the zero-copy live view of the
  :class:`~repro.coverage.state.CoverageState`, which the assignment updates
  by an O(N) delta;
* the per-user work is exactly one θ-blend into a preallocated buffer, one
  exclusion mask, and one masked argpartition top-N reusing a scratch buffer.

Every arithmetic operation matches the historical
:func:`~repro.ganc.value_function.combined_item_scores` →
:func:`~repro.utils.topn.top_n_indices` path elementwise, so the produced
collections are byte-identical — pinned by the batch-vs-loop equivalence
tests and the golden masters.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.coverage.dynamic import DynamicCoverage
from repro.exceptions import ConfigurationError
from repro.utils.topn import DEFAULT_BLOCK_SIZE, top_n_indices


def supports_incremental(coverage: object) -> bool:
    """Whether ``coverage`` can run the delta-updated sequential fast path.

    The fast path blends against the live :class:`CoverageState` score
    vector, which is only valid for the stock :class:`DynamicCoverage`
    semantics (user-independent scores, ``np.add.at`` count updates).
    Subclasses that may override ``scores``/``update`` fall back to the
    generic per-user loop.
    """
    return type(coverage) is DynamicCoverage


def iter_order_chunks(
    order: Sequence[int] | np.ndarray, block_size: int | None
) -> Iterator[np.ndarray]:
    """Yield the processing order in contiguous chunks of ``block_size`` users.

    Unlike :func:`repro.utils.topn.iter_user_blocks` the chunks preserve an
    arbitrary (e.g. θ-sorted) ordering instead of being index ranges.
    """
    size = DEFAULT_BLOCK_SIZE if block_size is None else int(block_size)
    if size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {size}")
    order = np.asarray(order, dtype=np.int64)
    for start in range(0, order.size, size):
        yield order[start : start + size]


_INF = float("inf")


def _select_top_n(work: np.ndarray, n: int) -> np.ndarray | None:
    """Exact canonical top-``n`` of a negated finite-or-``+inf`` work vector.

    ``work`` holds the negated scores (exclusions are ``+inf``), so the
    canonical ordering — decreasing score, ties by increasing index — is
    ascending ``(value, index)``.  One ``argpartition`` bounds the selection;
    every entry *strictly below* the partition boundary provably sits inside
    the partition, so those are ordered as small Python tuples, and the
    boundary-tied entries are read off one equality scan
    (``flatnonzero`` returns them in increasing index order, which *is* the
    canonical tie order).  This resolves boundary ties without the full
    stable sort :func:`repro.utils.topn.top_n_indices` falls back to, and
    produces bit-identical selections.  Returns ``None`` when fewer than
    ``n`` selectable entries exist (the canonical path handles padding).
    """
    part = np.argpartition(work, n - 1)[:n]
    vals = work[part].tolist()
    thresh = max(vals)
    if thresh == _INF:
        return None  # fewer than n selectable entries: canonical handles it
    better = sorted(pair for pair in zip(vals, part.tolist()) if pair[0] != thresh)
    items = [index for _, index in better]
    tied = np.flatnonzero(work == thresh)
    items.extend(tied[: n - len(items)].tolist())
    return np.array(items, dtype=np.int64)


class SequentialAssigner:
    """One sequential pass over users against delta-updated coverage state.

    Parameters
    ----------
    coverage:
        A fitted :class:`DynamicCoverage` (must satisfy
        :func:`supports_incremental`).
    n:
        Top-N size.
    block_size:
        Users per prefetched accuracy block; peak extra memory is
        ``O(block_size × n_items)``.
    """

    def __init__(
        self,
        coverage: DynamicCoverage,
        n: int,
        *,
        block_size: int | None = None,
    ) -> None:
        if not supports_incremental(coverage):
            raise ConfigurationError(
                "SequentialAssigner requires the stock DynamicCoverage; "
                f"got {type(coverage).__name__}"
            )
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.coverage = coverage
        self.n = int(n)
        self.block_size = block_size

    def run(
        self,
        out: np.ndarray,
        order: Sequence[int] | np.ndarray,
        theta: np.ndarray,
        accuracy_matrix: Callable[[np.ndarray], np.ndarray],
        exclusion_pairs: Callable[[np.ndarray], "tuple[np.ndarray, np.ndarray]"],
        *,
        on_assign: Callable[[int, np.ndarray], None] | None = None,
    ) -> np.ndarray:
        """Assign every user in ``order`` sequentially, writing rows of ``out``.

        ``out`` is the ``(n_users, n)`` result table (modified in place;
        rows of users outside ``order`` are untouched).  ``on_assign`` is
        invoked after each step with ``(user, items)`` — OSLG uses it to
        record snapshot deltas.  Returns ``out``.
        """
        theta = np.asarray(theta, dtype=np.float64)
        state = self.coverage.state
        n_items = state.n_items
        values = np.empty(n_items, dtype=np.float64)
        cov_term = np.empty(n_items, dtype=np.float64)
        scratch = np.empty(n_items, dtype=np.float64)
        live_scores = state.scores  # view aliases the state across updates

        for users in iter_order_chunks(order, self.block_size):
            acc_block = np.asarray(accuracy_matrix(users), dtype=np.float64)
            if acc_block.shape != (users.size, n_items):
                raise ConfigurationError(
                    f"accuracy block must have shape {(users.size, n_items)}, "
                    f"got {acc_block.shape}"
                )
            rows, cols = exclusion_pairs(users)
            bounds = np.searchsorted(rows, np.arange(users.size + 1))
            # One block-level scan establishes the selection's finiteness
            # guarantee (coverage scores are finite by construction, and a
            # bounded blend of finite terms cannot overflow), replacing the
            # per-user non-finite scrub inside the selection.
            finite_block = bool(np.isfinite(acc_block).all()) and (
                acc_block.size == 0 or float(np.abs(acc_block).max()) < 1e300
            )
            theta_block = theta[users]
            bad = np.flatnonzero((theta_block < 0.0) | (theta_block > 1.0) | np.isnan(theta_block))
            if bad.size:
                raise ConfigurationError(
                    f"theta must be in [0, 1], got {float(theta_block[bad[0]])}"
                )
            theta_list = theta_block.tolist()
            users_list = users.tolist()
            fast_select = finite_block and self.n < n_items
            for position in range(users.size):
                user = users_list[position]
                theta_u = theta_list[position]
                # Eq. III.1 blend, elementwise identical to
                # combined_item_scores: (1-θ)·a(i) + θ·c(i).
                np.multiply(acc_block[position], 1.0 - theta_u, out=values)
                np.multiply(live_scores, theta_u, out=cov_term)
                np.add(values, cov_term, out=values)
                exclude = cols[bounds[position] : bounds[position + 1]]
                if exclude.size:
                    values[exclude] = -np.inf
                items = None
                if fast_select:
                    np.negative(values, out=scratch)
                    items = _select_top_n(scratch, self.n)
                if items is None:
                    items = top_n_indices(
                        values, self.n, work=scratch, assume_finite=finite_block
                    )
                out[user, : items.size] = items
                self.coverage.update(items)
                if on_assign is not None:
                    on_assign(user, items)
        return out
