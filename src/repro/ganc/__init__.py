"""GANC: the Generic Accuracy/Novelty/Coverage re-ranking framework.

This subpackage contains the paper's primary contribution:

* :mod:`repro.ganc.value_function` — the per-user value function
  ``v_u(P_u) = (1 − θ_u)·a(P_u) + θ_u·c(P_u)`` (Eq. III.1),
* :mod:`repro.ganc.locally_greedy` — the exact Locally Greedy optimizer
  (Fisher et al. 1/2-approximation for submodular maximization under a
  partition matroid),
* :mod:`repro.ganc.oslg` — Ordered Sampling-based Locally Greedy
  (Algorithm 1), the scalable heuristic that samples users via a KDE of the
  long-tail preference distribution and serves them in increasing θ order,
* :mod:`repro.ganc.incremental` — the delta-updated sequential assignment
  engine both optimizers run their dynamic-coverage passes on,
* :mod:`repro.ganc.kde` — a small Gaussian kernel density estimator used by
  OSLG for preference-proportionate sampling,
* :mod:`repro.ganc.submodular` — objective evaluation and brute-force
  optimum helpers used to validate the approximation guarantees,
* :mod:`repro.ganc.framework` — the :class:`~repro.ganc.framework.GANC`
  facade that wires an accuracy recommender, a preference model and a coverage
  recommender together behind a single ``fit`` / ``recommend_all`` API.
"""

from repro.ganc.framework import GANC, GANCConfig
from repro.ganc.value_function import UserValueFunction, combined_item_scores
from repro.ganc.incremental import SequentialAssigner
from repro.ganc.locally_greedy import LocallyGreedyOptimizer
from repro.ganc.oslg import OSLGOptimizer, OSLGResult
from repro.ganc.kde import GaussianKDE, validate_bandwidth
from repro.ganc.submodular import (
    collection_value,
    dynamic_coverage_value,
    brute_force_best_collection,
)

__all__ = [
    "GANC",
    "GANCConfig",
    "UserValueFunction",
    "combined_item_scores",
    "SequentialAssigner",
    "LocallyGreedyOptimizer",
    "OSLGOptimizer",
    "OSLGResult",
    "GaussianKDE",
    "validate_bandwidth",
    "collection_value",
    "dynamic_coverage_value",
    "brute_force_best_collection",
]
