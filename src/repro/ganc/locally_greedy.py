"""Exact Locally Greedy optimization of the GANC objective.

Locally Greedy (Fisher, Nemhauser, Wolsey, 1978) maximizes a submodular
monotone function subject to a partition matroid by considering the partition
blocks — here, users — one at a time and greedily filling each block.  For
GANC with the Dyn coverage recommender this yields a 1/2-approximation of the
optimal top-N collection.

The implementation supports any user ordering (arbitrary, by increasing θ,
...); ordering does not affect the approximation guarantee but, as the paper
observes, serving low-θ users first steers popular items toward users who
prefer them and leaves fresher long-tail items for high-θ users.

The complexity is ``O(|U| · |I| · N)`` in the worst case (per user, one pass
over all items per greedy pick collapses to a single top-N selection because,
within one user's set, item gains are independent of each other).

With a *stateless* coverage recommender (Rand, Stat) the users do not interact
at all, so the whole assignment is a batched 2-D operation:
:meth:`LocallyGreedyOptimizer.run_independent` scores users in memory-bounded
blocks and selects every block's top-N rows at once, producing exactly the
same collection as the sequential loop.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.coverage.base import CoverageRecommender
from repro.exceptions import ConfigurationError
from repro.ganc.incremental import SequentialAssigner, supports_incremental
from repro.ganc.value_function import combined_item_scores
from repro.parallel.executor import Executor, resolve_executor
from repro.parallel.tasks import IndependentAssignTask
from repro.recommenders.base import FittedTopN
from repro.utils.topn import iter_user_blocks, top_n_indices


AccuracyScoreProvider = Callable[[int], np.ndarray]
ExclusionProvider = Callable[[int], np.ndarray]
#: Batched providers: map a block of user indices to a ``(B, n_items)`` score
#: block / to flattened ``(block_row, item)`` exclusion pairs.
BatchAccuracyProvider = Callable[[np.ndarray], np.ndarray]
BatchExclusionProvider = Callable[[np.ndarray], "tuple[np.ndarray, np.ndarray]"]


def stacked_accuracy_provider(accuracy_scores: AccuracyScoreProvider) -> BatchAccuracyProvider:
    """Adapt a per-user score callable to the batched provider interface."""

    def matrix(users: np.ndarray) -> np.ndarray:
        """Stack the per-user accuracy closure into block rows."""
        return np.stack(
            [np.asarray(accuracy_scores(int(u)), dtype=np.float64) for u in users]
        )

    return matrix


def stacked_exclusion_provider(exclusions: ExclusionProvider) -> BatchExclusionProvider:
    """Adapt a per-user exclusion callable to flattened block pairs."""

    def pairs(users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flatten the per-user exclusion closure into (rows, cols) pairs."""
        per_user = [np.asarray(exclusions(int(u)), dtype=np.int64) for u in users]
        counts = np.array([e.size for e in per_user], dtype=np.int64)
        if counts.sum() == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        rows = np.repeat(np.arange(len(per_user), dtype=np.int64), counts)
        return rows, np.concatenate(per_user)

    return pairs


class LocallyGreedyOptimizer:
    """Sequential locally greedy assignment of top-N sets.

    Parameters
    ----------
    coverage:
        A fitted coverage recommender.  When it is dynamic its state is
        updated after each user's assignment, creating the cross-user
        dependency the paper describes.
    n:
        Size of each user's top-N set.
    """

    def __init__(self, coverage: CoverageRecommender, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.coverage = coverage
        self.n = int(n)

    def run(
        self,
        theta: np.ndarray,
        accuracy_scores: AccuracyScoreProvider,
        exclusions: ExclusionProvider,
        *,
        user_order: Sequence[int] | None = None,
        n_users: int | None = None,
        accuracy_matrix: BatchAccuracyProvider | None = None,
        exclusion_pairs: BatchExclusionProvider | None = None,
        block_size: int | None = None,
    ) -> FittedTopN:
        """Assign a top-N set to every user.

        With the stock :class:`~repro.coverage.dynamic.DynamicCoverage` the
        sequential pass runs on the incremental fast path: accuracy rows are
        prefetched in ``block_size`` blocks through the batched providers
        (the per-user callables are adapted when no batched ones are given —
        identical rows either way) and the coverage scores are the live
        delta-updated state vector instead of a per-user recompute.  Output
        is byte-identical to the historical per-user loop, which remains the
        fallback for custom coverage implementations.

        Parameters
        ----------
        theta:
            Per-user long-tail preferences in [0, 1].
        accuracy_scores:
            Callable returning the user's accuracy score vector ``a(i)``.
        exclusions:
            Callable returning the items that must not be recommended to the
            user (their train items).
        user_order:
            Processing order; defaults to ``0..n_users-1``.
        n_users:
            Total number of users (defaults to ``len(theta)``).
        accuracy_matrix, exclusion_pairs:
            Optional batched providers (block of users → score block /
            flattened exclusion pairs) used by the incremental fast path.
        block_size:
            Users per prefetched accuracy block on the fast path.
        """
        theta = np.asarray(theta, dtype=np.float64)
        total_users = int(n_users if n_users is not None else theta.size)
        order = list(user_order) if user_order is not None else list(range(total_users))
        if sorted(order) != list(range(total_users)):
            raise ConfigurationError(
                "user_order must be a permutation of all users"
            )

        out = np.full((total_users, self.n), -1, dtype=np.int64)
        if supports_incremental(self.coverage):
            if accuracy_matrix is None:
                accuracy_matrix = stacked_accuracy_provider(accuracy_scores)
            if exclusion_pairs is None:
                exclusion_pairs = stacked_exclusion_provider(exclusions)
            assigner = SequentialAssigner(
                self.coverage, self.n, block_size=block_size  # type: ignore[arg-type]
            )
            assigner.run(out, order, theta, accuracy_matrix, exclusion_pairs)
            return FittedTopN(items=out)

        for user in order:
            items = self.assign_user(
                user,
                float(theta[user]),
                accuracy_scores(user),
                exclusions(user),
            )
            out[user, : items.size] = items
            if self.coverage.is_dynamic:
                self.coverage.update(items)
        return FittedTopN(items=out)

    def run_independent(
        self,
        theta: np.ndarray,
        accuracy_matrix: BatchAccuracyProvider,
        exclusion_pairs: BatchExclusionProvider,
        *,
        n_users: int | None = None,
        block_size: int | None = None,
        executor: Executor | None = None,
        n_jobs: int | None = None,
    ) -> FittedTopN:
        """Blocked 2-D assignment for stateless (non-dynamic) coverage.

        Because stateless coverage scores never change with assignments, the
        users' value functions are mutually independent and whole blocks can
        be scored and selected at once: one accuracy block, one (possibly
        broadcast) coverage block, one fancy-indexed exclusion mask and one
        row-wise top-N per ``block_size`` users.  The result matches
        :meth:`run` exactly (same canonical tie-breaking) on every executor
        backend.

        Parameters
        ----------
        theta:
            Per-user long-tail preferences in [0, 1].
        accuracy_matrix:
            Callable mapping a block of user indices to its ``(B, n_items)``
            accuracy score block.
        exclusion_pairs:
            Callable mapping a block of user indices to flattened
            ``(block_row, item)`` exclusion pairs (see
            :meth:`repro.data.dataset.RatingDataset.user_items_batch`).
        executor, n_jobs:
            Optional worker fan-out of the blocks.  The ``process`` backend
            requires picklable providers — GANC passes the handle-backed
            providers of :mod:`repro.parallel.tasks`; plain closures are
            fine for ``serial``/``thread``.
        """
        if self.coverage.is_dynamic:
            raise ConfigurationError(
                "run_independent requires a stateless coverage recommender; "
                "dynamic coverage couples users and needs the sequential run()"
            )
        theta = np.asarray(theta, dtype=np.float64)
        total_users = int(n_users if n_users is not None else theta.size)
        out = np.empty((total_users, self.n), dtype=np.int64)
        blocks = list(iter_user_blocks(total_users, block_size))
        task = IndependentAssignTask(
            self.coverage, theta, self.n, accuracy_matrix, exclusion_pairs
        )
        executor = resolve_executor(executor, n_jobs)
        for users, rows in zip(blocks, executor.map_blocks(task, blocks)):
            out[users] = rows
        return FittedTopN(items=out)

    def assign_user(
        self,
        user: int,
        theta_u: float,
        accuracy: np.ndarray,
        exclude: np.ndarray,
    ) -> np.ndarray:
        """Greedy top-N set of one user given the current coverage state."""
        coverage_scores = self.coverage.scores(user)
        values = combined_item_scores(accuracy, coverage_scores, theta_u)
        if np.asarray(exclude).size:
            values = values.copy()
            values[np.asarray(exclude, dtype=np.int64)] = -np.inf
        return top_n_indices(values, self.n)
