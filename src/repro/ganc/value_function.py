"""The per-user value function of GANC (Eq. III.1).

``v_u(P_u) = (1 − θ_u) · a(P_u) + θ_u · c(P_u)``

where ``a(P_u) = Σ_{i∈P_u} a(i)`` is the accuracy score of the set according
to the accuracy recommender and ``c(P_u) = Σ_{i∈P_u} c(i)`` the coverage
score.  Both per-item scores live on ``[0, 1]`` so the preference θ_u acts as
an interpretable mixing weight: θ_u = 0 reduces to pure accuracy ranking,
θ_u = 1 to pure coverage maximization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.topn import top_n_indices


def combined_item_scores(
    accuracy_scores: np.ndarray,
    coverage_scores: np.ndarray,
    theta: float,
) -> np.ndarray:
    """Per-item marginal value ``(1 − θ)·a(i) + θ·c(i)``.

    Because both score vectors are additive over items and, within a single
    user's set, independent of which other items the user receives, the greedy
    choice for a user reduces to taking the top-N items of this combined
    vector.
    """
    if not 0.0 <= theta <= 1.0:
        raise ConfigurationError(f"theta must be in [0, 1], got {theta}")
    acc = np.asarray(accuracy_scores, dtype=np.float64)
    cov = np.asarray(coverage_scores, dtype=np.float64)
    if acc.shape != cov.shape:
        raise ConfigurationError(
            f"accuracy and coverage score vectors must align, got {acc.shape} vs {cov.shape}"
        )
    return (1.0 - theta) * acc + theta * cov


def combined_score_matrix(
    accuracy_scores: np.ndarray,
    coverage_scores: np.ndarray,
    theta: np.ndarray,
) -> np.ndarray:
    """Batched Eq. III.1: value rows for a block of users at once.

    ``accuracy_scores`` and ``coverage_scores`` are ``(B, n_items)`` blocks
    (either may be a broadcast view) and ``theta`` holds the block's B mixing
    weights.  Row ``u`` equals ``combined_item_scores(acc[u], cov[u],
    theta[u])`` exactly, since the scalar arithmetic is identical.
    """
    theta = np.asarray(theta, dtype=np.float64)
    if theta.ndim != 1:
        raise ConfigurationError(f"theta block must be 1-D, got shape {theta.shape}")
    if theta.size and (theta.min() < 0.0 or theta.max() > 1.0):
        raise ConfigurationError("theta values must lie in [0, 1]")
    acc = np.asarray(accuracy_scores, dtype=np.float64)
    cov = np.asarray(coverage_scores, dtype=np.float64)
    if acc.ndim != 2 or acc.shape != cov.shape:
        raise ConfigurationError(
            f"score blocks must be 2-D and aligned, got {acc.shape} vs {cov.shape}"
        )
    if acc.shape[0] != theta.size:
        raise ConfigurationError(
            f"theta block must have one entry per row, got {theta.size} for {acc.shape}"
        )
    return (1.0 - theta)[:, None] * acc + theta[:, None] * cov


@dataclass(frozen=True)
class UserValueFunction:
    """Value function of one user, bound to concrete score vectors.

    Attributes
    ----------
    theta:
        The user's long-tail novelty preference θ_u ∈ [0, 1].
    accuracy_scores:
        Vector ``a(i)`` over all items (already on [0, 1]).
    coverage_scores:
        Vector ``c(i)`` over all items (already on [0, 1]).
    """

    theta: float
    accuracy_scores: np.ndarray
    coverage_scores: np.ndarray

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {self.theta}")
        acc = np.asarray(self.accuracy_scores, dtype=np.float64)
        cov = np.asarray(self.coverage_scores, dtype=np.float64)
        if acc.shape != cov.shape:
            raise ConfigurationError(
                f"score vectors must have identical shapes, got {acc.shape} vs {cov.shape}"
            )
        object.__setattr__(self, "accuracy_scores", acc)
        object.__setattr__(self, "coverage_scores", cov)

    def item_values(self) -> np.ndarray:
        """Marginal value of each item for this user."""
        return combined_item_scores(self.accuracy_scores, self.coverage_scores, self.theta)

    def value_of(self, items: np.ndarray) -> float:
        """``v_u(P_u)`` for a concrete top-N set ``items``."""
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return 0.0
        acc = float(self.accuracy_scores[items].sum())
        cov = float(self.coverage_scores[items].sum())
        return (1.0 - self.theta) * acc + self.theta * cov

    def greedy_top_n(self, n: int, *, exclude: np.ndarray | None = None) -> np.ndarray:
        """Greedy (= optimal, for additive scores) top-``n`` set for this user."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        values = self.item_values()
        if exclude is not None and np.asarray(exclude).size:
            values = values.copy()
            values[np.asarray(exclude, dtype=np.int64)] = -np.inf
        return top_n_indices(values, n)
