"""Item-space coverage metrics: Coverage@N and the Gini coefficient.

* ``Coverage@N`` is the fraction of the item universe that appears in at
  least one user's top-N set.
* ``Gini@N`` measures the inequality of the recommendation frequency
  distribution over items: 0 means every item is recommended equally often,
  values close to 1 mean recommendations concentrate on a few items.  The
  paper uses the Lorenz-curve formulation of Table III with the frequency
  vector sorted in non-decreasing order.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.exceptions import EvaluationError


def recommendation_frequencies(
    recommendations: Mapping[int, np.ndarray], n_items: int
) -> np.ndarray:
    """How often each item occurs across all users' top-N sets."""
    if n_items < 1:
        raise EvaluationError(f"n_items must be >= 1, got {n_items}")
    freq = np.zeros(n_items, dtype=np.int64)
    for _, items in recommendations.items():
        items = np.asarray(items, dtype=np.int64)
        if items.size:
            np.add.at(freq, items, 1)
    return freq


def coverage_at_n(recommendations: Mapping[int, np.ndarray], n_items: int) -> float:
    """Fraction of distinct items recommended to at least one user."""
    freq = recommendation_frequencies(recommendations, n_items)
    return float(np.count_nonzero(freq)) / float(n_items)


def gini_at_n(recommendations: Mapping[int, np.ndarray], n_items: int) -> float:
    """Gini coefficient of the recommendation frequency distribution.

    Computed with the Lorenz-curve formula over the frequency vector sorted in
    non-decreasing order; an all-zero frequency vector (no recommendations)
    returns 1.0, the maximally unequal convention.
    """
    freq = recommendation_frequencies(recommendations, n_items).astype(np.float64)
    total = freq.sum()
    if total <= 0:
        return 1.0
    sorted_freq = np.sort(freq)
    count = sorted_freq.size
    ranks = np.arange(1, count + 1, dtype=np.float64)
    # Gini = (|I| + 1 - 2 * Σ (|I| + 1 - j) f[j] / Σ f[j]) / |I| with f sorted
    # in non-decreasing order, as in Table III.
    weighted = float(((count + 1 - ranks) * sorted_freq).sum())
    return float((count + 1 - 2.0 * weighted / total) / count)
