"""Aggregated metric reports for a top-N recommendation run.

:func:`evaluate_top_n` computes every Table III metric for one algorithm on
one dataset split and returns a :class:`MetricReport`, the unit the experiment
harness aggregates into the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.popularity import PopularityStats
from repro.exceptions import EvaluationError
from repro.metrics.accuracy import (
    f_measure_at_n,
    ndcg_at_n,
    precision_at_n,
    recall_at_n,
)
from repro.metrics.coverage import coverage_at_n, gini_at_n
from repro.metrics.longtail import lt_accuracy_at_n, stratified_recall_at_n


def relevant_test_items(
    test: RatingDataset, *, relevance_threshold: float = 4.0
) -> dict[int, np.ndarray]:
    """Per-user relevant test items: test items rated >= the threshold.

    This is the paper's ``I^{T+}_u`` set.  Users with no relevant test items
    map to empty arrays (they are skipped by the accuracy metrics).
    """
    relevant: dict[int, np.ndarray] = {u: np.empty(0, dtype=np.int64) for u in range(test.n_users)}
    mask = test.ratings >= relevance_threshold
    users = test.user_indices[mask]
    items = test.item_indices[mask]
    order = np.argsort(users, kind="stable")
    users, items = users[order], items[order]
    boundaries = np.flatnonzero(np.diff(users)) + 1
    for group in np.split(np.arange(users.size), boundaries):
        if group.size == 0:
            continue
        user = int(users[group[0]])
        relevant[user] = items[group].astype(np.int64)
    return relevant


@dataclass(frozen=True)
class MetricReport:
    """All Table III metrics of one algorithm on one dataset split.

    The ``extras`` mapping carries optional additional values (NDCG, timing,
    hyper-parameters) without widening the core schema.
    """

    algorithm: str
    dataset: str
    n: int
    precision: float
    recall: float
    f_measure: float
    lt_accuracy: float
    stratified_recall: float
    coverage: float
    gini: float
    extras: Mapping[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """Core metrics as a flat dictionary (used by table formatting)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f_measure": self.f_measure,
            "lt_accuracy": self.lt_accuracy,
            "stratified_recall": self.stratified_recall,
            "coverage": self.coverage,
            "gini": self.gini,
        }

    def metric(self, name: str) -> float:
        """Look up a metric by name (core metrics first, then extras)."""
        core = self.as_dict()
        if name in core:
            return core[name]
        if name in self.extras:
            return float(self.extras[name])
        raise EvaluationError(f"unknown metric {name!r} in report for {self.algorithm}")


def evaluate_top_n(
    recommendations: Mapping[int, np.ndarray],
    train: RatingDataset,
    test: RatingDataset,
    n: int,
    *,
    algorithm: str = "algorithm",
    relevance_threshold: float = 4.0,
    beta: float = 0.5,
    popularity: PopularityStats | None = None,
    include_ndcg: bool = False,
) -> MetricReport:
    """Compute the full Table III metric suite for one recommendation run."""
    if n < 1:
        raise EvaluationError(f"n must be >= 1, got {n}")
    stats = popularity if popularity is not None else PopularityStats.from_dataset(train)
    relevant = relevant_test_items(test, relevance_threshold=relevance_threshold)

    extras: dict[str, float] = {}
    if include_ndcg:
        extras["ndcg"] = ndcg_at_n(recommendations, relevant, n)

    return MetricReport(
        algorithm=algorithm,
        dataset=train.name,
        n=n,
        precision=precision_at_n(recommendations, relevant, n),
        recall=recall_at_n(recommendations, relevant, n),
        f_measure=f_measure_at_n(recommendations, relevant, n),
        lt_accuracy=lt_accuracy_at_n(recommendations, stats.long_tail_mask, n),
        stratified_recall=stratified_recall_at_n(
            recommendations, relevant, stats.popularity, beta=beta
        ),
        coverage=coverage_at_n(recommendations, train.n_items),
        gini=gini_at_n(recommendations, train.n_items),
        extras=extras,
    )
