"""Long-tail promotion metrics: LTAccuracy@N and Stratified Recall@N.

* ``LTAccuracy@N`` (Ho et al., 2014) is the average proportion of the top-N
  set made of long-tail items — items the user is unlikely to already know.
  It emphasizes a combination of novelty and coverage.
* ``Stratified Recall@N`` (Steck, 2013) re-weights recalled test items by the
  inverse of their train popularity raised to ``β`` (0.5 in the paper),
  measuring how well a model compensates for the popularity bias while still
  retrieving relevant items — a combination of novelty and accuracy.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.exceptions import EvaluationError


def lt_accuracy_at_n(
    recommendations: Mapping[int, np.ndarray],
    long_tail_mask: np.ndarray,
    n: int,
) -> float:
    """Average fraction of recommended items that are long-tail.

    ``long_tail_mask`` is a boolean vector over the item universe.
    """
    if n < 1:
        raise EvaluationError(f"n must be >= 1, got {n}")
    mask = np.asarray(long_tail_mask, dtype=bool)
    total = 0.0
    counted = 0
    for _, items in recommendations.items():
        items = np.asarray(items, dtype=np.int64)
        total += float(mask[items].sum()) / float(n) if items.size else 0.0
        counted += 1
    return total / counted if counted else 0.0


def stratified_recall_at_n(
    recommendations: Mapping[int, np.ndarray],
    relevant: Mapping[int, np.ndarray],
    train_popularity: np.ndarray,
    *,
    beta: float = 0.5,
) -> float:
    """Popularity-stratified recall with exponent ``beta``.

    The numerator accumulates ``(1 / f^R_i)^β`` over relevant test items that
    appear in the user's top-N set; the denominator accumulates the same
    weight over *all* relevant test items.  Items that never occur in train
    would have infinite weight, so their popularity is floored at 1 (they can
    only hurt a model that fails to recommend them, mirroring the metric's
    published behaviour on pruned evaluation sets).
    """
    if beta < 0:
        raise EvaluationError(f"beta must be non-negative, got {beta}")
    popularity = np.asarray(train_popularity, dtype=np.float64)
    weights = 1.0 / np.maximum(popularity, 1.0) ** beta

    numerator = 0.0
    denominator = 0.0
    for user, rel_items in relevant.items():
        rel = np.asarray(rel_items, dtype=np.int64)
        if rel.size == 0:
            continue
        rec_set = {int(i) for i in np.asarray(recommendations.get(user, ()), dtype=np.int64)}
        rel_weights = weights[rel]
        denominator += float(rel_weights.sum())
        hits = np.array([int(item) in rec_set for item in rel])
        numerator += float(rel_weights[hits].sum())
    return numerator / denominator if denominator > 0 else 0.0
