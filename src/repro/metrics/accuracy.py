"""Local ranking accuracy metrics and rating-prediction error metrics.

Following the paper (Table III), precision and recall are computed per user
against the user's *relevant* test items — the test items rated at or above a
relevance threshold (4.0 on a 5-star scale) — and then averaged over users.
The paper's Precision@N divides by ``N`` for every user and averages across
all users with relevant test items.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import EvaluationError


def _as_set(items: Sequence[int] | np.ndarray) -> set[int]:
    return {int(i) for i in np.asarray(items, dtype=np.int64).ravel().tolist()}


def precision_at_n(
    recommendations: Mapping[int, np.ndarray],
    relevant: Mapping[int, np.ndarray],
    n: int,
) -> float:
    """Average proportion of the top-N set that is a relevant test item.

    Users without any relevant test items are skipped, matching the common
    evaluation convention (their precision is undefined).
    """
    if n < 1:
        raise EvaluationError(f"n must be >= 1, got {n}")
    total = 0.0
    counted = 0
    for user, rel_items in relevant.items():
        rel = _as_set(rel_items)
        if not rel:
            continue
        recs = _as_set(recommendations.get(user, np.empty(0)))
        total += len(recs & rel) / float(n)
        counted += 1
    return total / counted if counted else 0.0


def recall_at_n(
    recommendations: Mapping[int, np.ndarray],
    relevant: Mapping[int, np.ndarray],
    n: int,
) -> float:
    """Average proportion of each user's relevant test items that were retrieved."""
    if n < 1:
        raise EvaluationError(f"n must be >= 1, got {n}")
    del n  # recall does not depend on N beyond the recommendation set size
    total = 0.0
    counted = 0
    for user, rel_items in relevant.items():
        rel = _as_set(rel_items)
        if not rel:
            continue
        recs = _as_set(recommendations.get(user, np.empty(0)))
        total += len(recs & rel) / float(len(rel))
        counted += 1
    return total / counted if counted else 0.0


def f_measure_at_n(
    recommendations: Mapping[int, np.ndarray],
    relevant: Mapping[int, np.ndarray],
    n: int,
) -> float:
    """Harmonic mean of Precision@N and Recall@N (0 when both are 0)."""
    precision = precision_at_n(recommendations, relevant, n)
    recall = recall_at_n(recommendations, relevant, n)
    if precision + recall == 0.0:
        return 0.0
    return precision * recall / (precision + recall)


def ndcg_at_n(
    recommendations: Mapping[int, np.ndarray],
    relevant: Mapping[int, np.ndarray],
    n: int,
) -> float:
    """Binary-relevance NDCG@N averaged over users with relevant test items."""
    if n < 1:
        raise EvaluationError(f"n must be >= 1, got {n}")
    discounts = 1.0 / np.log2(np.arange(2, n + 2))
    total = 0.0
    counted = 0
    for user, rel_items in relevant.items():
        rel = _as_set(rel_items)
        if not rel:
            continue
        recs = np.asarray(recommendations.get(user, np.empty(0)), dtype=np.int64)[:n]
        gains = np.array([1.0 if int(item) in rel else 0.0 for item in recs])
        dcg = float((gains * discounts[: gains.size]).sum())
        ideal_hits = min(len(rel), n)
        idcg = float(discounts[:ideal_hits].sum())
        total += dcg / idcg if idcg > 0 else 0.0
        counted += 1
    return total / counted if counted else 0.0


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root-mean-square error between predicted and observed ratings."""
    preds = np.asarray(predictions, dtype=np.float64)
    obs = np.asarray(targets, dtype=np.float64)
    if preds.shape != obs.shape:
        raise EvaluationError(
            f"predictions and targets must align, got {preds.shape} vs {obs.shape}"
        )
    if preds.size == 0:
        return float("nan")
    err = preds - obs
    return float(np.sqrt(np.mean(err * err)))


def mae(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean absolute error between predicted and observed ratings."""
    preds = np.asarray(predictions, dtype=np.float64)
    obs = np.asarray(targets, dtype=np.float64)
    if preds.shape != obs.shape:
        raise EvaluationError(
            f"predictions and targets must align, got {preds.shape} vs {obs.shape}"
        )
    if preds.size == 0:
        return float("nan")
    return float(np.mean(np.abs(preds - obs)))
