"""Performance metrics (Table III of the paper) plus standard error metrics.

* Local ranking accuracy: Precision@N, Recall@N, F-measure@N (computed per
  user over highly rated test items, then averaged).
* Long-tail promotion: LTAccuracy@N and Stratified Recall@N.
* Coverage: Coverage@N and the Gini coefficient of the recommendation
  frequency distribution.
* Rating-prediction error: RMSE and MAE (for the Table V appendix study).
* Ranking quality: NDCG@N (used when comparing CofiRank configurations).
"""

from repro.metrics.accuracy import (
    precision_at_n,
    recall_at_n,
    f_measure_at_n,
    ndcg_at_n,
    rmse,
    mae,
)
from repro.metrics.longtail import lt_accuracy_at_n, stratified_recall_at_n
from repro.metrics.coverage import coverage_at_n, gini_at_n, recommendation_frequencies
from repro.metrics.report import MetricReport, evaluate_top_n, relevant_test_items
from repro.metrics.beyond import (
    expected_popularity_complement,
    average_recommendation_popularity,
    personalization,
    intra_list_dissimilarity,
)

__all__ = [
    "precision_at_n",
    "recall_at_n",
    "f_measure_at_n",
    "ndcg_at_n",
    "rmse",
    "mae",
    "lt_accuracy_at_n",
    "stratified_recall_at_n",
    "coverage_at_n",
    "gini_at_n",
    "recommendation_frequencies",
    "MetricReport",
    "evaluate_top_n",
    "relevant_test_items",
    "expected_popularity_complement",
    "average_recommendation_popularity",
    "personalization",
    "intra_list_dissimilarity",
]
