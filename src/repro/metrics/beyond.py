"""Additional beyond-accuracy metrics from the recommender-systems literature.

The paper's related-work section situates GANC among novelty/diversity-aware
recommenders (Castells et al., Vargas & Castells, Ziegler et al.).  These
metrics are not part of Table III but are standard companions when analysing
re-ranking behaviour, and the examples / ablations use them:

* **Expected popularity complement (EPC)** — mean self-information-style
  novelty of the recommended items: ``1 − pop(i)/max_pop`` averaged over all
  recommended slots.  High EPC means the lists consist of items few users have
  interacted with.
* **Average recommendation popularity (ARP)** — the raw mean train popularity
  of recommended items (lower = more novel), often reported alongside EPC.
* **Personalization** — average pairwise dissimilarity (1 − Jaccard) between
  the top-N sets of different users.  Non-personalized models like Pop score 0.
* **Intra-list dissimilarity** — average pairwise dissimilarity of the items
  *within* a user's list, with item similarity taken from co-rating patterns;
  this is the aggregate-diversity counterpart used by Ziegler et al.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping

import numpy as np
from scipy import sparse

from repro.data.dataset import RatingDataset
from repro.exceptions import EvaluationError


def expected_popularity_complement(
    recommendations: Mapping[int, np.ndarray],
    train_popularity: np.ndarray,
) -> float:
    """Mean novelty ``1 − pop(i)/max_pop`` over all recommended slots."""
    popularity = np.asarray(train_popularity, dtype=np.float64)
    if popularity.size == 0:
        raise EvaluationError("train_popularity must not be empty")
    max_pop = max(float(popularity.max()), 1.0)
    total = 0.0
    count = 0
    for items in recommendations.values():
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            continue
        total += float((1.0 - popularity[items] / max_pop).sum())
        count += items.size
    return total / count if count else 0.0


def average_recommendation_popularity(
    recommendations: Mapping[int, np.ndarray],
    train_popularity: np.ndarray,
) -> float:
    """Mean train popularity of the recommended items (lower = more novel)."""
    popularity = np.asarray(train_popularity, dtype=np.float64)
    total = 0.0
    count = 0
    for items in recommendations.values():
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            continue
        total += float(popularity[items].sum())
        count += items.size
    return total / count if count else 0.0


def personalization(
    recommendations: Mapping[int, np.ndarray],
    *,
    max_pairs: int = 5_000,
    seed: int = 0,
) -> float:
    """Average pairwise (1 − Jaccard) dissimilarity between users' top-N sets.

    For large user counts a random sample of ``max_pairs`` user pairs is used;
    the estimate is deterministic for a fixed seed.
    """
    users = [u for u, items in recommendations.items() if np.asarray(items).size > 0]
    if len(users) < 2:
        return 0.0
    sets = {u: set(np.asarray(recommendations[u]).tolist()) for u in users}
    pairs = list(combinations(users, 2))
    if len(pairs) > max_pairs:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(pairs), size=max_pairs, replace=False)
        pairs = [pairs[int(i)] for i in chosen]
    total = 0.0
    for a, b in pairs:
        union = len(sets[a] | sets[b])
        if union == 0:
            continue
        jaccard = len(sets[a] & sets[b]) / union
        total += 1.0 - jaccard
    return total / len(pairs) if pairs else 0.0


def _item_cosine_similarity(train: RatingDataset) -> sparse.csr_matrix:
    """Binary co-rating cosine similarity between items (sparse)."""
    matrix = train.to_csr().copy()
    matrix.data = np.ones_like(matrix.data)
    gram = (matrix.T @ matrix).tocsr()
    counts = np.asarray(gram.diagonal()).ravel()
    norms = np.sqrt(np.maximum(counts, 1.0))
    # Normalize rows and columns by the item norms.
    inverse = sparse.diags(1.0 / norms)
    return (inverse @ gram @ inverse).tocsr()


def intra_list_dissimilarity(
    recommendations: Mapping[int, np.ndarray],
    train: RatingDataset,
) -> float:
    """Average pairwise (1 − cosine co-rating similarity) within each user's list."""
    similarity = _item_cosine_similarity(train)
    total = 0.0
    counted_users = 0
    for items in recommendations.values():
        items = np.asarray(items, dtype=np.int64)
        if items.size < 2:
            continue
        sub = similarity[items][:, items].toarray()
        pair_count = items.size * (items.size - 1) / 2
        upper = np.triu(sub, k=1)
        total += float(pair_count - upper.sum()) / pair_count
        counted_users += 1
    return total / counted_users if counted_users else 0.0
