"""Collaborative ranking with regression loss (the paper's ``CofiR`` variant).

CoFiRank (Weimer et al., 2007) is a maximum-margin matrix factorization model
for collaborative *ranking*.  The paper reports only the regression
(squared-loss) variant, ``CofiR100``, which it found to consistently beat the
NDCG-loss variant.  With a squared loss the model reduces to alternating
regularized least squares in a shared latent space, which is what this class
implements:

* item factors and user factors are optimized in turns, each step solving a
  ridge-regression problem restricted to the observed ratings of the
  user/item;
* ratings are centered by the global mean, mirroring the original model's
  offset handling.

The alternating least squares solver is exact per sub-problem and converges
monotonically, giving a deterministic, scalable stand-in for the original C++
implementation.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender
from repro.utils.rng import SeedLike, ensure_rng


class CofiRank(Recommender):
    """Collaborative ranking via alternating ridge regression (CofiR).

    Parameters
    ----------
    n_factors:
        Latent dimensionality (100 in the paper's ``CofiR100``).
    reg:
        Ridge regularization coefficient λ (10 in the paper's setup).
    n_iterations:
        Number of alternating optimization sweeps.
    seed:
        RNG seed for factor initialization.
    """

    def __init__(
        self,
        n_factors: int = 100,
        *,
        reg: float = 10.0,
        n_iterations: int = 10,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if n_factors < 1:
            raise ConfigurationError(f"n_factors must be >= 1, got {n_factors}")
        if reg < 0:
            raise ConfigurationError(f"reg must be non-negative, got {reg}")
        if n_iterations < 1:
            raise ConfigurationError(f"n_iterations must be >= 1, got {n_iterations}")
        self.n_factors = int(n_factors)
        self.reg = float(reg)
        self.n_iterations = int(n_iterations)
        self._seed = seed

        self.global_mean_: float = 0.0
        self.user_factors_: np.ndarray | None = None
        self.item_factors_: np.ndarray | None = None

    def fit(self, train: RatingDataset) -> "CofiRank":
        """Alternate exact ridge solves for user and item factors."""
        rng = ensure_rng(self._seed)
        n_users, n_items = train.n_users, train.n_items
        k = min(self.n_factors, max(min(n_users, n_items) - 1, 1))

        self.global_mean_ = train.mean_rating()
        user_factors = rng.normal(0.0, 0.1, size=(n_users, k))
        item_factors = rng.normal(0.0, 0.1, size=(n_items, k))

        csr = train.to_csr()
        csc = train.to_csc()
        eye = np.eye(k)

        for _ in range(self.n_iterations):
            # Solve each user's ridge regression against fixed item factors.
            for user in range(n_users):
                start, stop = csr.indptr[user], csr.indptr[user + 1]
                if start == stop:
                    continue
                items = csr.indices[start:stop]
                targets = csr.data[start:stop] - self.global_mean_
                q = item_factors[items]
                gram = q.T @ q + self.reg * eye
                user_factors[user] = np.linalg.solve(gram, q.T @ targets)
            # Solve each item's ridge regression against fixed user factors.
            for item in range(n_items):
                start, stop = csc.indptr[item], csc.indptr[item + 1]
                if start == stop:
                    continue
                users = csc.indices[start:stop]
                targets = csc.data[start:stop] - self.global_mean_
                p = user_factors[users]
                gram = p.T @ p + self.reg * eye
                item_factors[item] = np.linalg.solve(gram, p.T @ targets)

        self.user_factors_ = user_factors
        self.item_factors_ = item_factors
        self._mark_fitted(train)
        return self

    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Predicted (mean-centered + offset) ratings for ``items``."""
        self._check_fitted()
        assert self.user_factors_ is not None and self.item_factors_ is not None
        items = np.asarray(items, dtype=np.int64)
        return self.global_mean_ + self.item_factors_[items] @ self.user_factors_[user]

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Predicted rating rows for a block of users via one factor product."""
        self._check_fitted()
        assert self.user_factors_ is not None and self.item_factors_ is not None
        users = self._resolve_users(users)
        return self.global_mean_ + self.user_factors_[users] @ self.item_factors_.T
