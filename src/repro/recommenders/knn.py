"""Item-based k-nearest-neighbour collaborative filtering.

A classic memory-based model (Sarwar et al., 2001) included as an additional
baseline for the examples and ablation benches.  The score of an unseen item
is the similarity-weighted average of the user's ratings on the ``k`` most
similar items, with cosine similarity computed on the item-user rating matrix.

Two scale toggles extend the exact model without touching its defaults:

* ``exact=False`` switches to a memory-bounded neighbour search that never
  materializes the dense item-item gram matrix: the similarity graph is
  stored sparse (top-``k`` per item) and scoring runs through sparse-sparse
  products, making both fit memory and per-user scoring cost independent of
  ``|I|²``.  By default neighbours come from a *blocked gram scan* — exact
  restricted sparse products, one ``block × |I|`` stripe at a time — which at
  repository scales is both exact-by-construction (recall 1.0) and faster
  than the dense path.  Setting ``n_projections`` opts into a true sublinear
  candidate search (Johnson–Lindenstrauss random-projection sketch + exact
  rescoring of candidate pairs), which pays off when the per-user activity
  distribution makes the full gram product (``Σ_u nnz_u²``) intractable; its
  recall depends on the data having clustered co-rating structure and is
  gated in ``tests/test_scale.py``.
* ``dtype="float32"`` computes similarities and scores in single precision,
  halving the resident footprint; top-N equivalence under a documented
  tolerance is pinned by ``tests/test_scale.py``.

With the defaults (``exact=True``, ``dtype="float64"``) every operation is
bit-identical to the original implementation — the golden fixtures pin this.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender

_SCORE_DTYPES = {"float32": np.float32, "float64": np.float64}

# Item pairs rescored exactly per chunk on the sketch path; bounds the peak
# memory of the gathered sparse rows to a few hundred MB at 10M ratings.
_PAIR_CHUNK = 262_144

# Item rows per block of the gram scan / sketched candidate search; bounds
# the densified workspace to ``block × n_items`` entries.
_ESTIMATE_BLOCK = 512


class ItemKNN(Recommender):
    """Item-item cosine KNN over the train rating matrix.

    Parameters
    ----------
    k:
        Number of neighbours contributing to each prediction.
    shrinkage:
        Additive shrinkage on the similarity denominator; damps similarities
        supported by few co-ratings.
    exact:
        ``True`` (default) computes the full dense gram matrix — the
        golden-pinned exact path.  ``False`` builds a sparse top-``k``
        neighbour graph with memory bounded by ``block × |I|`` instead of
        ``|I|²``, via the blocked gram scan (default) or the sketch search
        (``n_projections`` set) described in the module docstring.
    dtype:
        Scoring precision, ``"float64"`` (default, golden-pinned) or
        ``"float32"``.
    n_projections:
        ``None`` (default) keeps the blocked gram scan.  An integer enables
        the Johnson–Lindenstrauss candidate sketch of that dimensionality;
        the relative error of sketched similarities shrinks as
        ``1/sqrt(n_projections)``, so larger values separate items better at
        higher fit cost.  Ignored when ``exact``.
    n_candidates:
        Neighbour candidates kept per item after the sketched ranking, before
        exact rescoring; higher values trade fit time for recall.  Only used
        with ``n_projections``.
    seed:
        Seed for the random projection planes.  Only used with
        ``n_projections``.
    """

    supports_delta_refit = True

    def __init__(
        self,
        k: int = 50,
        *,
        shrinkage: float = 10.0,
        exact: bool = True,
        dtype: str = "float64",
        n_projections: int | None = None,
        n_candidates: int = 400,
        seed: object = 0,
    ) -> None:
        super().__init__()
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if shrinkage < 0:
            raise ConfigurationError(f"shrinkage must be non-negative, got {shrinkage}")
        if dtype not in _SCORE_DTYPES:
            raise ConfigurationError(
                f"dtype must be one of {sorted(_SCORE_DTYPES)}, got {dtype!r}"
            )
        if n_projections is not None and n_projections < 1:
            raise ConfigurationError(
                f"n_projections must be >= 1 or None, got {n_projections}"
            )
        if n_candidates < 1:
            raise ConfigurationError(f"n_candidates must be >= 1, got {n_candidates}")
        self.k = int(k)
        self.shrinkage = float(shrinkage)
        self.exact = bool(exact)
        self.dtype = str(dtype)
        self.n_projections = None if n_projections is None else int(n_projections)
        self.n_candidates = int(n_candidates)
        self.seed = 0 if seed is None else seed
        # Delta refits reuse the cached gram, which only the exact float64
        # path maintains (and whose bit-identity guarantee is stated in
        # float64 terms).
        self.supports_delta_refit = self.exact and self.dtype == "float64"
        self.similarity_: np.ndarray | sparse.csr_matrix | None = None
        self._abs_similarity: np.ndarray | sparse.csr_matrix | None = None
        self._gram: np.ndarray | None = None

    @property
    def _np_dtype(self) -> type:
        """The numpy scalar type behind the ``dtype`` toggle."""
        return _SCORE_DTYPES[self.dtype]

    def _finalize(self, gram: np.ndarray, n_items: int) -> None:
        """Normalize + sparsify a gram matrix into the similarity state.

        Shared by :meth:`fit` and :meth:`delta_refit` so both walk the exact
        same float operations — the delta path's byte-identity guarantee
        reduces to its gram entries matching the from-scratch product.
        """
        norms = np.sqrt(np.diag(gram))
        denom = np.outer(norms, norms) + self.shrinkage
        denom[denom == 0.0] = 1.0
        similarity = gram / denom
        np.fill_diagonal(similarity, 0.0)

        if self.k < n_items - 1:
            # Keep only the top-k neighbours per item (sparsify in place).
            for item in range(n_items):
                row = similarity[item]
                if np.count_nonzero(row) > self.k:
                    threshold = np.partition(row, -self.k)[-self.k]
                    row[row < threshold] = 0.0
        # The raw gram is kept (and persisted) so appended interactions can
        # be absorbed by recomputing only the touched rows/columns.
        self._gram = gram
        self.similarity_ = similarity
        # Cached for the batched score path's weight-mass product.
        self._abs_similarity = np.abs(similarity)

    def fit(self, train: RatingDataset) -> "ItemKNN":
        """Compute the item-item cosine similarity matrix (dense or sparse)."""
        if not self.exact:
            self._fit_ann(train)
            self._mark_fitted(train)
            return self
        matrix = train.to_csc().astype(self._np_dtype)
        # Cosine similarity between item columns.
        gram = (matrix.T @ matrix).toarray()
        self._finalize(gram, train.n_items)
        self._mark_fitted(train)
        return self

    def _fit_ann(self, train: RatingDataset) -> None:
        """Memory-bounded neighbour search: blocked gram scan or JL sketch.

        Both modes share an exact diagonal pass (doubly-restricted sparse
        products, which scipy accumulates in the same order as the full gram
        — the norms are bit-identical to the exact path's) and store the
        resulting top-``k`` graph sparse.

        *Scan* (default): each ``_ESTIMATE_BLOCK``-row stripe of the gram is
        computed with a restricted sparse product, normalized, and pruned to
        per-item top-``k`` immediately — the workspace never exceeds
        ``block × |I|``, and the kept entries are bit-identical to the dense
        path's because restricted products match the full product per entry.

        *Sketch* (``n_projections`` set): item rating columns are projected
        into an ``n_projections``-dimensional Johnson–Lindenstrauss subspace,
        where inner products — hence shrunk cosine similarities — survive up
        to relative error ``O(1/sqrt(n_projections))``.  Sketched similarities
        are ranked blockwise, each item keeps ``n_candidates`` candidates, and
        only those pairs get exact rating-column dot products (gathered sparse
        rows, chunked so peak memory stays bounded).  This search is sublinear
        in ``Σ_u nnz_u²`` — the regime where it beats the scan is very active
        users — but its recall depends on clustered co-rating structure.
        """
        n_items = train.n_items
        if n_items < 2:
            raise ConfigurationError("the ANN path needs at least 2 items")
        matrix = train.to_csc().astype(np.float64)
        item_rows = matrix.T.tocsr()  # items x users; row i is item i's ratings

        # Exact gram diagonal from doubly-restricted products; bit-identical
        # to ``np.diag((Mᵀ M).toarray())`` at a fraction of its cost.
        diagonal = np.empty(n_items, dtype=np.float64)
        for start in range(0, n_items, _ESTIMATE_BLOCK):
            stop = min(start + _ESTIMATE_BLOCK, n_items)
            product = (item_rows[start:stop] @ matrix[:, start:stop]).toarray()
            diagonal[start:stop] = np.asarray(product).diagonal()
        norms = np.sqrt(diagonal)

        if self.n_projections is None:
            kept = self._scan_candidates(item_rows, matrix, norms, n_items)
        else:
            kept = self._sketch_candidates(item_rows, norms, n_items)
        kept_rows, kept_cols, kept_values = kept
        similarity = sparse.csr_matrix(
            (kept_values.astype(self._np_dtype), (kept_rows, kept_cols)),
            shape=(n_items, n_items),
        )
        similarity.eliminate_zeros()
        self._gram = None
        self.similarity_ = similarity
        self._abs_similarity = abs(similarity)

    def _scan_candidates(
        self,
        item_rows: sparse.csr_matrix,
        matrix: sparse.csc_matrix,
        norms: np.ndarray,
        n_items: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Blocked exact gram stripes, pruned to top-``k`` as they stream."""
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        for start in range(0, n_items, _ESTIMATE_BLOCK):
            stop = min(start + _ESTIMATE_BLOCK, n_items)
            block = np.asarray((item_rows[start:stop] @ matrix).toarray())
            denom = np.outer(norms[start:stop], norms) + self.shrinkage
            denom[denom == 0.0] = 1.0
            block /= denom
            local = np.arange(stop - start)
            block[local, local + start] = 0.0
            if self.k < n_items - 1:
                # Same rule as _finalize: rows with more than k nonzeros drop
                # everything below their kth-largest value (ties survive).
                threshold = np.partition(block, -self.k, axis=1)[:, -self.k]
                prune = block < threshold[:, None]
                prune[np.count_nonzero(block, axis=1) <= self.k] = False
                block[prune] = 0.0
            local_rows, local_cols = np.nonzero(block)
            row_parts.append(local_rows.astype(np.int64) + start)
            col_parts.append(local_cols.astype(np.int64))
            value_parts.append(block[local_rows, local_cols])
        return (
            np.concatenate(row_parts),
            np.concatenate(col_parts),
            np.concatenate(value_parts),
        )

    def _sketch_candidates(
        self,
        item_rows: sparse.csr_matrix,
        norms: np.ndarray,
        n_items: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """JL-sketched candidate ranking followed by exact pair rescoring."""
        rng = np.random.default_rng(self.seed)
        planes = rng.standard_normal((item_rows.shape[1], self.n_projections)).astype(
            np.float32
        )
        sketch = np.asarray(item_rows.astype(np.float32) @ planes)
        sketch /= np.float32(np.sqrt(self.n_projections))
        sketch_norms = norms.astype(np.float32)
        shrinkage32 = np.float32(self.shrinkage)

        n_candidates = min(self.n_candidates, n_items - 1)
        row_blocks: list[np.ndarray] = []
        col_blocks: list[np.ndarray] = []
        for start in range(0, n_items, _ESTIMATE_BLOCK):
            stop = min(start + _ESTIMATE_BLOCK, n_items)
            estimate = sketch[start:stop] @ sketch.T
            denominator = np.outer(sketch_norms[start:stop], sketch_norms) + shrinkage32
            denominator[denominator == 0.0] = np.float32(1.0)
            estimate /= denominator
            # An item is never its own neighbour.
            local = np.arange(stop - start)
            estimate[local, local + start] = -np.inf
            candidates = np.argpartition(estimate, -n_candidates, axis=1)[
                :, -n_candidates:
            ]
            row_blocks.append(
                np.repeat(np.arange(start, stop, dtype=np.int64), n_candidates)
            )
            col_blocks.append(candidates.ravel().astype(np.int64))
        rows = np.concatenate(row_blocks)
        cols = np.concatenate(col_blocks)

        dots = np.empty(rows.size, dtype=np.float64)
        for start in range(0, rows.size, _PAIR_CHUNK):
            stop = min(start + _PAIR_CHUNK, rows.size)
            left = item_rows[rows[start:stop]]
            right = item_rows[cols[start:stop]]
            dots[start:stop] = np.asarray(left.multiply(right).sum(axis=1)).ravel()
        denom = norms[rows] * norms[cols] + self.shrinkage
        denom[denom == 0.0] = 1.0
        values = dots / denom

        # Per-item top-k over the candidate pool (rows are grouped and
        # contiguous: exactly n_candidates entries per item, in item order).
        values2d = values.reshape(n_items, n_candidates)
        cols2d = cols.reshape(n_items, n_candidates)
        if self.k < n_candidates:
            pick = np.argpartition(values2d, -self.k, axis=1)[:, -self.k :]
            anchor = np.arange(n_items)[:, None]
            kept_rows = np.repeat(np.arange(n_items, dtype=np.int64), self.k)
            kept_cols = cols2d[anchor, pick].ravel()
            kept_values = values2d[anchor, pick].ravel()
        else:
            kept_rows, kept_cols, kept_values = rows, cols, values
        return kept_rows, kept_cols, kept_values

    def delta_refit(self, train: RatingDataset) -> "ItemKNN":
        """Recompute only the gram rows/columns of items touched by the delta.

        Appended interactions change the rating-matrix columns of exactly
        the items they mention, so only gram rows/columns of those items
        move; both are recomputed with *restricted* sparse products
        (``Mᵀ[touched] @ M`` and ``Mᵀ @ M[:, touched]``), which scipy
        evaluates with the same per-entry accumulation order as the full
        product — the refreshed entries are bit-identical to a from-scratch
        gram (asserted in ``tests/test_incremental.py``).  Normalization and
        top-k sparsification then rerun in full: touched norms change every
        denominator they appear in, so no similarity row can be assumed
        stable, but that pass is dense O(|I|²) — the expensive sparse matmul
        is what the delta avoids.  Only the exact float64 mode supports
        deltas: the ANN path has no gram to patch, and the bit-identity
        contract is stated in float64.
        """
        self._check_fitted()
        if not self.supports_delta_refit:
            raise ConfigurationError(
                "delta refits require the exact float64 scoring path "
                f"(exact={self.exact}, dtype={self.dtype!r}); refit from "
                "scratch instead"
            )
        if self._gram is None:
            raise ConfigurationError(
                "this ItemKNN has no cached gram matrix (saved before delta "
                "support was added); refit from scratch instead"
            )
        _, delta_items, _ = self._delta_interactions(train)
        n_items = train.n_items
        gram = self._gram
        if n_items > gram.shape[0]:
            grown = np.zeros((n_items, n_items), dtype=np.float64)
            grown[: gram.shape[0], : gram.shape[0]] = gram
            gram = grown
        touched = np.unique(delta_items)
        self.delta_changed_state = bool(touched.size) or n_items != self._gram.shape[0]
        if not self.delta_changed_state:
            # Pure user growth (cold-start arrivals): no rating-matrix
            # column moved and no item appeared, so the gram, similarity
            # and top-k state are already bitwise what a fresh fit would
            # produce — only the train reference needs updating.
            self._mark_fitted(train)
            return self
        if touched.size:
            matrix = train.to_csc().astype(np.float64)
            transpose = matrix.T  # CSR view: rows are item columns of M
            gram[touched, :] = (transpose[touched] @ matrix).toarray()
            gram[:, touched] = (transpose @ matrix[:, touched]).toarray()
        self._finalize(gram, n_items)
        self._mark_fitted(train)
        return self

    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Similarity-weighted average of the user's ratings."""
        self._check_fitted()
        assert self.similarity_ is not None
        items = np.asarray(items, dtype=np.int64)
        rated_items, rated_values = self.train_data.user_ratings(user)
        if rated_items.size == 0:
            return np.zeros(items.size, dtype=np.float64)
        if sparse.issparse(self.similarity_):
            sims = np.asarray(
                self.similarity_[items][:, rated_items].toarray(), dtype=np.float64
            )
        else:
            sims = self.similarity_[np.ix_(items, rated_items)]
        weights = np.abs(sims).sum(axis=1)
        weights[weights == 0.0] = 1.0
        return np.asarray((sims @ rated_values) / weights, dtype=np.float64)

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Neighbour-weighted score rows via two sparse products.

        For a block of users with rating rows ``R`` (sparse) the numerator is
        ``R @ S^T`` and the per-item weight is ``|R|_0 @ |S|^T`` (indicator
        rows against absolute similarities), which reproduces the per-user
        formula for every user of the block at once.  With a sparse
        similarity graph (``exact=False``) both products are sparse-sparse —
        cost ``O(nnz_u · k)`` per user instead of ``O(nnz_u · |I|)`` — and
        only the block's score rows are densified, never ``|U| x |I|``.
        """
        self._check_fitted()
        assert self.similarity_ is not None and self._abs_similarity is not None
        users = self._resolve_users(users)
        block = self.train_data.to_csr()[users]
        if sparse.issparse(self.similarity_):
            block = block.astype(self._np_dtype)
            numerator = np.asarray(
                (block @ self.similarity_.T).toarray(), dtype=np.float64
            )
            indicator = block.copy()
            indicator.data = np.ones_like(indicator.data)
            weights = np.asarray(
                (indicator @ self._abs_similarity.T).toarray(), dtype=np.float64
            )
            weights[weights == 0.0] = 1.0
            return numerator / weights
        if self.similarity_.dtype == np.float32:
            block = block.astype(np.float32)
        numerator = block @ self.similarity_.T
        indicator = block.copy()
        indicator.data = np.ones_like(indicator.data)
        weights = indicator @ self._abs_similarity.T
        weights[weights == 0.0] = 1.0
        return np.asarray(numerator / weights, dtype=np.float64)
