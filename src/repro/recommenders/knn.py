"""Item-based k-nearest-neighbour collaborative filtering.

A classic memory-based model (Sarwar et al., 2001) included as an additional
baseline for the examples and ablation benches.  The score of an unseen item
is the similarity-weighted average of the user's ratings on the ``k`` most
similar items, with cosine similarity computed on the item-user rating matrix.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender


class ItemKNN(Recommender):
    """Item-item cosine KNN over the train rating matrix.

    Parameters
    ----------
    k:
        Number of neighbours contributing to each prediction.
    shrinkage:
        Additive shrinkage on the similarity denominator; damps similarities
        supported by few co-ratings.
    """

    supports_delta_refit = True

    def __init__(self, k: int = 50, *, shrinkage: float = 10.0) -> None:
        super().__init__()
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if shrinkage < 0:
            raise ConfigurationError(f"shrinkage must be non-negative, got {shrinkage}")
        self.k = int(k)
        self.shrinkage = float(shrinkage)
        self.similarity_: np.ndarray | None = None
        self._abs_similarity: np.ndarray | None = None
        self._gram: np.ndarray | None = None

    def _finalize(self, gram: np.ndarray, n_items: int) -> None:
        """Normalize + sparsify a gram matrix into the similarity state.

        Shared by :meth:`fit` and :meth:`delta_refit` so both walk the exact
        same float operations — the delta path's byte-identity guarantee
        reduces to its gram entries matching the from-scratch product.
        """
        norms = np.sqrt(np.diag(gram))
        denom = np.outer(norms, norms) + self.shrinkage
        denom[denom == 0.0] = 1.0
        similarity = gram / denom
        np.fill_diagonal(similarity, 0.0)

        if self.k < n_items - 1:
            # Keep only the top-k neighbours per item (sparsify in place).
            for item in range(n_items):
                row = similarity[item]
                if np.count_nonzero(row) > self.k:
                    threshold = np.partition(row, -self.k)[-self.k]
                    row[row < threshold] = 0.0
        # The raw gram is kept (and persisted) so appended interactions can
        # be absorbed by recomputing only the touched rows/columns.
        self._gram = gram
        self.similarity_ = similarity
        # Cached for the batched score path's weight-mass product.
        self._abs_similarity = np.abs(similarity)

    def fit(self, train: RatingDataset) -> "ItemKNN":
        """Compute the (dense) item-item cosine similarity matrix."""
        matrix = train.to_csc().astype(np.float64)
        # Cosine similarity between item columns.
        gram = (matrix.T @ matrix).toarray()
        self._finalize(gram, train.n_items)
        self._mark_fitted(train)
        return self

    def delta_refit(self, train: RatingDataset) -> "ItemKNN":
        """Recompute only the gram rows/columns of items touched by the delta.

        Appended interactions change the rating-matrix columns of exactly
        the items they mention, so only gram rows/columns of those items
        move; both are recomputed with *restricted* sparse products
        (``Mᵀ[touched] @ M`` and ``Mᵀ @ M[:, touched]``), which scipy
        evaluates with the same per-entry accumulation order as the full
        product — the refreshed entries are bit-identical to a from-scratch
        gram (asserted in ``tests/test_incremental.py``).  Normalization and
        top-k sparsification then rerun in full: touched norms change every
        denominator they appear in, so no similarity row can be assumed
        stable, but that pass is dense O(|I|²) — the expensive sparse matmul
        is what the delta avoids.
        """
        self._check_fitted()
        if self._gram is None:
            raise ConfigurationError(
                "this ItemKNN has no cached gram matrix (saved before delta "
                "support was added); refit from scratch instead"
            )
        _, delta_items, _ = self._delta_interactions(train)
        n_items = train.n_items
        gram = self._gram
        if n_items > gram.shape[0]:
            grown = np.zeros((n_items, n_items), dtype=np.float64)
            grown[: gram.shape[0], : gram.shape[0]] = gram
            gram = grown
        touched = np.unique(delta_items)
        self.delta_changed_state = bool(touched.size) or n_items != self._gram.shape[0]
        if not self.delta_changed_state:
            # Pure user growth (cold-start arrivals): no rating-matrix
            # column moved and no item appeared, so the gram, similarity
            # and top-k state are already bitwise what a fresh fit would
            # produce — only the train reference needs updating.
            self._mark_fitted(train)
            return self
        if touched.size:
            matrix = train.to_csc().astype(np.float64)
            transpose = matrix.T  # CSR view: rows are item columns of M
            gram[touched, :] = (transpose[touched] @ matrix).toarray()
            gram[:, touched] = (transpose @ matrix[:, touched]).toarray()
        self._finalize(gram, n_items)
        self._mark_fitted(train)
        return self

    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Similarity-weighted average of the user's ratings."""
        self._check_fitted()
        assert self.similarity_ is not None
        items = np.asarray(items, dtype=np.int64)
        rated_items, rated_values = self.train_data.user_ratings(user)
        if rated_items.size == 0:
            return np.zeros(items.size, dtype=np.float64)
        sims = self.similarity_[np.ix_(items, rated_items)]
        weights = np.abs(sims).sum(axis=1)
        weights[weights == 0.0] = 1.0
        return (sims @ rated_values) / weights

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Neighbour-weighted score rows via two sparse-dense products.

        For a block of users with rating rows ``R`` (sparse) the numerator is
        ``R @ S^T`` and the per-item weight is ``|R|_0 @ |S|^T`` (indicator
        rows against absolute similarities), which reproduces the per-user
        formula for every user of the block at once.
        """
        self._check_fitted()
        assert self.similarity_ is not None and self._abs_similarity is not None
        users = self._resolve_users(users)
        block = self.train_data.to_csr()[users]
        numerator = block @ self.similarity_.T
        indicator = block.copy()
        indicator.data = np.ones_like(indicator.data)
        weights = indicator @ self._abs_similarity.T
        weights[weights == 0.0] = 1.0
        return np.asarray(numerator / weights, dtype=np.float64)
