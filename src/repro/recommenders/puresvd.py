"""PureSVD latent-factor model (Cremonesi, Koren, Turrin — RecSys 2010).

Missing ratings are imputed with zeros and a conventional truncated SVD of the
resulting sparse matrix is computed.  The score of item ``i`` for user ``u`` is
the reconstruction ``(U_k Σ_k V_k^T)_{ui}``, which corresponds to an
association strength rather than a predicted rating.  The paper reports two
configurations, PSVD10 and PSVD100 (10 and 100 latent factors).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import svds

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender


class PureSVD(Recommender):
    """Truncated SVD of the zero-imputed rating matrix.

    Parameters
    ----------
    n_factors:
        Number of singular triplets to keep.  Automatically reduced when the
        train matrix is too small (``k`` must be smaller than both matrix
        dimensions).
    """

    def __init__(self, n_factors: int = 100) -> None:
        super().__init__()
        if n_factors < 1:
            raise ConfigurationError(f"n_factors must be >= 1, got {n_factors}")
        self.n_factors = int(n_factors)
        self.user_factors_: np.ndarray | None = None
        self.item_factors_: np.ndarray | None = None
        self.effective_factors_: int | None = None

    def fit(self, train: RatingDataset) -> "PureSVD":
        """Compute the truncated SVD of the train rating matrix."""
        matrix = train.to_csr().astype(np.float64)
        max_rank = min(matrix.shape) - 1
        if max_rank < 1:
            raise ConfigurationError(
                "PureSVD needs a train matrix with at least 2 users and 2 items"
            )
        k = min(self.n_factors, max_rank)
        # svds' default ARPACK start vector is drawn from the *global* numpy
        # RNG, so a fit is only reproducible when something upstream happens
        # to have seeded it (dataset generation does; a refit of a loaded
        # pipeline does not).  A fixed start vector makes every fit
        # deterministic on its own.
        v0 = np.ones(min(matrix.shape), dtype=np.float64)
        u, s, vt = svds(matrix, k=k, v0=v0)
        # svds returns singular values in ascending order; flip to descending.
        order = np.argsort(-s)
        self.user_factors_ = u[:, order] * s[order][None, :]
        self.item_factors_ = vt[order].T
        self.effective_factors_ = k
        self._mark_fitted(train)
        return self

    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """User-item association scores from the truncated reconstruction."""
        self._check_fitted()
        assert self.user_factors_ is not None and self.item_factors_ is not None
        items = np.asarray(items, dtype=np.int64)
        return self.item_factors_[items] @ self.user_factors_[user]

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Reconstruction rows ``(U_k Σ_k V_k^T)`` for a block of users."""
        self._check_fitted()
        assert self.user_factors_ is not None and self.item_factors_ is not None
        users = self._resolve_users(users)
        return self.user_factors_[users] @ self.item_factors_.T
