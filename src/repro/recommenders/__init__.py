"""Accuracy recommenders: the base models GANC and the baselines re-rank.

Implemented from scratch on numpy/scipy:

* :class:`~repro.recommenders.popularity.MostPopular` — non-personalized
  popularity ranking (``Pop`` in the paper),
* :class:`~repro.recommenders.random.RandomRecommender` — uniform random
  suggestions (``Rand``),
* :class:`~repro.recommenders.rsvd.RSVD` — regularized matrix factorization
  trained with (mini-batch) SGD, optionally with non-negative factors
  (``RSVD`` / ``RSVDN``, the LIBMF models of the paper),
* :class:`~repro.recommenders.puresvd.PureSVD` — PureSVD latent factor model
  (missing entries imputed with zeros, truncated SVD),
* :class:`~repro.recommenders.cofirank.CofiRank` — collaborative ranking with
  regression (squared) loss, the ``CofiR`` variant the paper reports,
* :class:`~repro.recommenders.knn.ItemKNN` — neighbourhood model used as an
  additional baseline and in the examples.
"""

from repro.recommenders.base import Recommender, FittedTopN
from repro.recommenders.popularity import MostPopular
from repro.recommenders.random import RandomRecommender
from repro.recommenders.rsvd import RSVD
from repro.recommenders.puresvd import PureSVD
from repro.recommenders.cofirank import CofiRank
from repro.recommenders.knn import ItemKNN
from repro.recommenders.user_knn import UserKNN
from repro.recommenders.registry import make_recommender, RECOMMENDER_REGISTRY

__all__ = [
    "Recommender",
    "FittedTopN",
    "MostPopular",
    "RandomRecommender",
    "RSVD",
    "PureSVD",
    "CofiRank",
    "ItemKNN",
    "UserKNN",
    "make_recommender",
    "RECOMMENDER_REGISTRY",
]
