"""The ``Pop`` (most popular) accuracy recommender.

Non-personalized: every user is suggested the most popular items they have not
rated yet.  For ranking tasks this model is a strong accuracy contender because
it exploits the popularity bias of the data, but it has low novelty and
coverage (Cremonesi et al., 2010; Vargas & Castells, 2014).

When used as the accuracy component of GANC, the paper defines the accuracy
score as binary membership: ``a(i) = 1`` if item ``i`` is inside the top-N set
Pop would suggest to the user, ``a(i) = 0`` otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.recommenders.base import Recommender


class MostPopular(Recommender):
    """Rank items by their train-set popularity ``f^R_i``.

    Ties are broken deterministically by item index so repeated runs produce
    identical recommendation sets.
    """

    def __init__(self) -> None:
        super().__init__()
        self._popularity: np.ndarray | None = None
        self._scores: np.ndarray | None = None

    def fit(self, train: RatingDataset) -> "MostPopular":
        """Count item frequencies in ``train``."""
        self._popularity = train.item_popularity().astype(np.float64)
        # Deterministic tie-break: subtract a tiny index-based epsilon so equal
        # popularity resolves to the lower item index first.
        n_items = train.n_items
        jitter = np.arange(n_items, dtype=np.float64) / (10.0 * max(n_items, 1))
        self._scores = self._popularity - jitter
        self._mark_fitted(train)
        return self

    @property
    def popularity(self) -> np.ndarray:
        """Item popularity counts learned at fit time."""
        self._check_fitted()
        assert self._popularity is not None
        return self._popularity

    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Popularity scores (identical for every user)."""
        self._check_fitted()
        del user  # non-personalized
        assert self._scores is not None
        return self._scores[np.asarray(items, dtype=np.int64)]

    def unit_scores(self, user: int, n: int) -> np.ndarray:
        """Binary top-N membership, as the paper defines ``a(i)`` for Pop."""
        self._check_fitted()
        top = self.recommend(user, n)
        scores = np.zeros(self.train_data.n_items, dtype=np.float64)
        scores[top] = 1.0
        return scores
