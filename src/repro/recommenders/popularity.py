"""The ``Pop`` (most popular) accuracy recommender.

Non-personalized: every user is suggested the most popular items they have not
rated yet.  For ranking tasks this model is a strong accuracy contender because
it exploits the popularity bias of the data, but it has low novelty and
coverage (Cremonesi et al., 2010; Vargas & Castells, 2014).

When used as the accuracy component of GANC, the paper defines the accuracy
score as binary membership: ``a(i) = 1`` if item ``i`` is inside the top-N set
Pop would suggest to the user, ``a(i) = 0`` otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.recommenders.base import Recommender


class MostPopular(Recommender):
    """Rank items by their train-set popularity ``f^R_i``.

    Ties are broken deterministically by item index so repeated runs produce
    identical recommendation sets.
    """

    supports_delta_refit = True

    def __init__(self) -> None:
        super().__init__()
        self._popularity: np.ndarray | None = None
        self._scores: np.ndarray | None = None

    def _rescore(self, n_items: int) -> None:
        # Deterministic tie-break: subtract a tiny index-based epsilon so equal
        # popularity resolves to the lower item index first.
        assert self._popularity is not None
        jitter = np.arange(n_items, dtype=np.float64) / (10.0 * max(n_items, 1))
        self._scores = self._popularity - jitter

    def fit(self, train: RatingDataset) -> "MostPopular":
        """Count item frequencies in ``train``."""
        self._popularity = train.item_popularity().astype(np.float64)
        self._rescore(train.n_items)
        self._mark_fitted(train)
        return self

    def delta_refit(self, train: RatingDataset) -> "MostPopular":
        """Add the appended interactions' counts to the fitted popularity.

        Bit-identical to a fresh :meth:`fit` on ``train``: popularity counts
        are integer-valued float64s, and adding 1.0 per delta interaction is
        exact regardless of order, so the delta-updated counts equal the
        from-scratch ``bincount``; the tie-break scores are recomputed in
        full (the jitter denominator depends on ``n_items``).
        """
        _, delta_items, _ = self._delta_interactions(train)
        assert self._popularity is not None
        self.delta_changed_state = bool(delta_items.size) or train.n_items != self._popularity.size
        popularity = np.zeros(train.n_items, dtype=np.float64)
        popularity[: self._popularity.size] = self._popularity
        np.add.at(popularity, delta_items, 1.0)
        self._popularity = popularity
        self._rescore(train.n_items)
        self._mark_fitted(train)
        return self

    @property
    def popularity(self) -> np.ndarray:
        """Item popularity counts learned at fit time."""
        self._check_fitted()
        assert self._popularity is not None
        return self._popularity

    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Popularity scores (identical for every user)."""
        self._check_fitted()
        del user  # non-personalized
        assert self._scores is not None
        return self._scores[np.asarray(items, dtype=np.int64)]

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """One identical popularity row per requested user."""
        self._check_fitted()
        users = self._resolve_users(users)
        assert self._scores is not None
        return np.tile(self._scores, (users.size, 1))

    def unit_scores_batch(self, users: np.ndarray | None, n: int) -> np.ndarray:
        """Binary top-N membership rows, as the paper defines ``a(i)`` for Pop."""
        self._check_fitted()
        users = self._resolve_users(users)
        top = self.recommend_block(users, n)
        scores = np.zeros((users.size, self.train_data.n_items), dtype=np.float64)
        rows = np.repeat(np.arange(users.size), top.shape[1])
        cols = top.ravel()
        valid = cols >= 0
        scores[rows[valid], cols[valid]] = 1.0
        return scores
