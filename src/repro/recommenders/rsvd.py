"""Regularized SVD (RSVD): biased matrix factorization trained with SGD.

This is the LIBMF-style rating-prediction model the paper uses as the base of
all re-ranking comparisons (Section IV-A, Table V).  In LIBMF's default
formulation the predicted rating is the plain factor product

``r̂_ui = p_u · q_i``

(no bias terms), and training minimizes the L2-regularized squared error over
the observed ratings.  Setting ``use_biases=True`` switches to the
Koren-style biased model ``r̂_ui = μ + b_u + b_i + p_u · q_i``, which is more
accurate for rating prediction but changes the top-N behaviour the paper
reports for RSVD (the bias-free model tends to overscore rarely rated items,
which is exactly the popularity/coverage profile of RSVD in Table IV).  Optimization uses mini-batch stochastic gradient descent: each epoch
shuffles the observed triples, and within a mini-batch the parameter updates
are applied with scatter-adds (``np.add.at``), which keeps the Python overhead
per epoch constant while remaining a faithful SGD variant.

Setting ``non_negative=True`` projects the latent factors onto the
non-negative orthant after every update, which reproduces the RSVDN variant
the paper also evaluated (and found indistinguishable from RSVD).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics of an SGD run."""

    epoch_rmse: list[float]

    @property
    def final_rmse(self) -> float:
        """Train RMSE after the last epoch (NaN when never trained)."""
        return self.epoch_rmse[-1] if self.epoch_rmse else float("nan")


class RSVD(Recommender):
    """Biased matrix factorization with SGD and L2 regularization.

    Parameters
    ----------
    n_factors:
        Latent dimensionality ``g``.
    n_epochs:
        Number of passes over the training ratings.
    learning_rate:
        SGD step size ``η``.
    reg:
        L2 regularization coefficient ``λ`` applied to factors and biases.
    batch_size:
        Mini-batch size; 1 reproduces classic per-sample SGD (slow in pure
        Python), larger values vectorize each step.
    non_negative:
        Project latent factors to be non-negative after each update (RSVDN).
    use_biases:
        Add a global mean plus user/item bias terms to the prediction
        (disabled by default to match LIBMF).
    init_scale:
        Standard deviation of the factor initialization.
    seed:
        RNG seed for initialization and shuffling.
    """

    def __init__(
        self,
        n_factors: int = 20,
        *,
        n_epochs: int = 20,
        learning_rate: float = 0.01,
        reg: float = 0.05,
        batch_size: int = 1024,
        non_negative: bool = False,
        use_biases: bool = False,
        init_scale: float = 0.1,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if n_factors < 1:
            raise ConfigurationError(f"n_factors must be >= 1, got {n_factors}")
        if n_epochs < 1:
            raise ConfigurationError(f"n_epochs must be >= 1, got {n_epochs}")
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if reg < 0:
            raise ConfigurationError(f"reg must be non-negative, got {reg}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.n_factors = int(n_factors)
        self.n_epochs = int(n_epochs)
        self.learning_rate = float(learning_rate)
        self.reg = float(reg)
        self.batch_size = int(batch_size)
        self.non_negative = bool(non_negative)
        self.use_biases = bool(use_biases)
        self.init_scale = float(init_scale)
        self._seed = seed

        self.global_mean_: float = 0.0
        self.user_factors_: np.ndarray | None = None
        self.item_factors_: np.ndarray | None = None
        self.user_bias_: np.ndarray | None = None
        self.item_bias_: np.ndarray | None = None
        self.history_: TrainingHistory | None = None

    # ------------------------------------------------------------------ #
    def fit(self, train: RatingDataset) -> "RSVD":
        """Run mini-batch SGD over the observed ratings."""
        rng = ensure_rng(self._seed)
        n_users, n_items = train.n_users, train.n_items
        users = train.user_indices
        items = train.item_indices
        ratings = train.ratings

        self.global_mean_ = train.mean_rating() if self.use_biases else 0.0
        # Bias-free factorization (the LIBMF default) must reconstruct the
        # rating scale from the factor product alone; centering the factor
        # initialization at sqrt(mean_rating / k) makes the initial predictions
        # start near the global mean, which keeps early epochs stable and
        # avoids the long burn-in a zero-centered initialization would need.
        if self.use_biases:
            init_center = 0.0
        else:
            init_center = float(np.sqrt(max(train.mean_rating(), 0.0) / self.n_factors))
        self.user_factors_ = rng.normal(
            init_center, self.init_scale, size=(n_users, self.n_factors)
        )
        self.item_factors_ = rng.normal(
            init_center, self.init_scale, size=(n_items, self.n_factors)
        )
        self.user_bias_ = np.zeros(n_users)
        self.item_bias_ = np.zeros(n_items)
        if self.non_negative:
            np.abs(self.user_factors_, out=self.user_factors_)
            np.abs(self.item_factors_, out=self.item_factors_)

        history: list[float] = []
        n = ratings.size
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            squared_error = 0.0
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                squared_error += self._sgd_step(users[batch], items[batch], ratings[batch])
            history.append(float(np.sqrt(squared_error / n)))
        self.history_ = TrainingHistory(epoch_rmse=history)
        self._mark_fitted(train)
        return self

    def _sgd_step(self, users: np.ndarray, items: np.ndarray, ratings: np.ndarray) -> float:
        """One mini-batch update; returns the batch's summed squared error.

        Gradient contributions are *averaged* per user and per item within the
        batch (rather than summed): a very popular item can appear hundreds of
        times in one batch, and summing its per-sample gradients with a fixed
        step size makes the update explode on popularity-skewed data.
        Averaging keeps every row's effective step at ``learning_rate`` times
        a single-sample-scale gradient, which is stable for any batch size and
        reduces to classic SGD when ``batch_size=1``.
        """
        assert self.user_factors_ is not None and self.item_factors_ is not None
        assert self.user_bias_ is not None and self.item_bias_ is not None
        lr = self.learning_rate
        reg = self.reg

        pu = self.user_factors_[users]
        qi = self.item_factors_[items]
        pred = (
            self.global_mean_
            + self.user_bias_[users]
            + self.item_bias_[items]
            + np.einsum("ij,ij->i", pu, qi)
        )
        err = ratings - pred

        grad_pu = err[:, None] * qi - reg * pu
        grad_qi = err[:, None] * pu - reg * qi

        user_counts = np.bincount(users, minlength=self.user_factors_.shape[0]).astype(np.float64)
        item_counts = np.bincount(items, minlength=self.item_factors_.shape[0]).astype(np.float64)
        user_scale = 1.0 / user_counts[users]
        item_scale = 1.0 / item_counts[items]

        np.add.at(self.user_factors_, users, lr * grad_pu * user_scale[:, None])
        np.add.at(self.item_factors_, items, lr * grad_qi * item_scale[:, None])
        if self.use_biases:
            grad_bu = err - reg * self.user_bias_[users]
            grad_bi = err - reg * self.item_bias_[items]
            np.add.at(self.user_bias_, users, lr * grad_bu * user_scale)
            np.add.at(self.item_bias_, items, lr * grad_bi * item_scale)

        if self.non_negative:
            np.maximum(self.user_factors_[users], 0.0, out=self.user_factors_[users])
            np.maximum(self.item_factors_[items], 0.0, out=self.item_factors_[items])

        return float(np.dot(err, err))

    # ------------------------------------------------------------------ #
    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Predicted ratings ``r̂_ui`` for the requested items."""
        self._check_fitted()
        assert self.user_factors_ is not None and self.item_factors_ is not None
        assert self.user_bias_ is not None and self.item_bias_ is not None
        items = np.asarray(items, dtype=np.int64)
        return (
            self.global_mean_
            + self.user_bias_[user]
            + self.item_bias_[items]
            + self.item_factors_[items] @ self.user_factors_[user]
        )

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Predicted rating rows ``R̂`` for a block of users (all by default)."""
        self._check_fitted()
        assert self.user_factors_ is not None and self.item_factors_ is not None
        assert self.user_bias_ is not None and self.item_bias_ is not None
        users = self._resolve_users(users)
        return (
            self.global_mean_
            + self.user_bias_[users, None]
            + self.item_bias_[None, :]
            + self.user_factors_[users] @ self.item_factors_.T
        )

    def rmse(self, dataset: RatingDataset) -> float:
        """Root-mean-square error of the predictions on ``dataset``."""
        self._check_fitted()
        preds = np.array(
            [
                self.predict_scores(int(u), np.asarray([i]))[0]
                for u, i in zip(dataset.user_indices, dataset.item_indices)
            ]
        )
        err = dataset.ratings - preds
        return float(np.sqrt(np.mean(err * err))) if err.size else float("nan")
