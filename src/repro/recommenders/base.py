"""Common interface of all accuracy recommenders.

Every model exposes two views of its predictions:

* ``predict_scores(user, items)`` — raw model scores (predicted ratings,
  popularity counts, associations, ...), used for ranking;
* ``unit_scores(user, n)`` — scores over *all* items mapped onto ``[0, 1]``
  (per-user min-max normalization by default), used as the accuracy term
  ``a(i)`` of the GANC value function (Eq. III.1).  The non-personalized
  ``Pop`` recommender overrides this with binary top-N membership, exactly as
  the paper specifies.

``recommend`` and ``recommend_all`` always exclude the user's train items so
that top-N sets follow the "all unrated items" protocol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.normalization import min_max_normalize


@dataclass(frozen=True)
class FittedTopN:
    """Top-N sets for every user, as produced by :meth:`Recommender.recommend_all`.

    Attributes
    ----------
    items:
        Integer array of shape ``(n_users, n)``; row ``u`` holds the top-N
        item indices of user ``u`` in rank order.  Rows may contain ``-1``
        padding when a user has fewer than ``n`` candidates.
    """

    items: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.items, dtype=np.int64)
        if arr.ndim != 2:
            raise ConfigurationError(f"top-N items must be 2-D, got shape {arr.shape}")
        object.__setattr__(self, "items", arr)

    @property
    def n_users(self) -> int:
        """Number of users covered by this collection."""
        return int(self.items.shape[0])

    @property
    def n(self) -> int:
        """Size of each top-N set."""
        return int(self.items.shape[1])

    def for_user(self, user: int) -> np.ndarray:
        """Valid (non-padding) recommendations of ``user`` in rank order."""
        row = self.items[user]
        return row[row >= 0]

    def as_dict(self) -> dict[int, np.ndarray]:
        """Return a ``{user: item array}`` mapping (drops padding)."""
        return {u: self.for_user(u) for u in range(self.n_users)}


class Recommender(ABC):
    """Abstract base class of all accuracy recommenders."""

    def __init__(self) -> None:
        self._train: RatingDataset | None = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    @abstractmethod
    def fit(self, train: RatingDataset) -> "Recommender":
        """Fit the model on the train interactions and return ``self``."""

    def _mark_fitted(self, train: RatingDataset) -> None:
        self._train = train

    @property
    def train_data(self) -> RatingDataset:
        """The train dataset this model was fitted on."""
        self._check_fitted()
        assert self._train is not None
        return self._train

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._train is not None

    def _check_fitted(self) -> None:
        if self._train is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before it can be used"
            )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    @abstractmethod
    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Raw model scores of ``items`` for ``user`` (higher is better)."""

    def score_all_items(self, user: int) -> np.ndarray:
        """Raw scores of every item in the universe for ``user``."""
        self._check_fitted()
        all_items = np.arange(self.train_data.n_items, dtype=np.int64)
        return self.predict_scores(user, all_items)

    def unit_scores(self, user: int, n: int) -> np.ndarray:
        """Accuracy scores ``a(i)`` in ``[0, 1]`` over all items for ``user``.

        The default maps the raw score vector through per-user min-max
        normalization.  ``n`` is unused by score-based models but lets
        membership-based models (Pop) know the top-N size.
        """
        del n  # only membership-based recommenders need the top-N size
        return min_max_normalize(self.score_all_items(user))

    # ------------------------------------------------------------------ #
    # Recommendation
    # ------------------------------------------------------------------ #
    def recommend(
        self,
        user: int,
        n: int,
        *,
        exclude_items: np.ndarray | None = None,
    ) -> np.ndarray:
        """Top-``n`` unseen items for ``user`` in decreasing score order.

        ``exclude_items`` defaults to the user's train items.
        """
        self._check_fitted()
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        scores = self.score_all_items(user).astype(np.float64, copy=True)
        if exclude_items is None:
            exclude_items = self.train_data.user_items(user)
        if exclude_items.size:
            scores[np.asarray(exclude_items, dtype=np.int64)] = -np.inf

        candidates = np.flatnonzero(np.isfinite(scores))
        if candidates.size == 0:
            return np.empty(0, dtype=np.int64)
        k = min(n, candidates.size)
        # Partial selection then exact ordering of the selected head.
        top = candidates[np.argpartition(-scores[candidates], k - 1)[:k]]
        return top[np.argsort(-scores[top], kind="stable")]

    def recommend_all(self, n: int) -> FittedTopN:
        """Top-``n`` sets for every user (train items excluded)."""
        self._check_fitted()
        n_users = self.train_data.n_users
        out = np.full((n_users, n), -1, dtype=np.int64)
        for user in range(n_users):
            items = self.recommend(user, n)
            out[user, : items.size] = items
        return FittedTopN(items=out)
