"""Common interface of all accuracy recommenders.

The primary scoring contract is **batched**: models score a whole block of
users at once and the per-user views are thin slices of the batch path.

* ``predict_matrix(users)`` — raw model scores (predicted ratings, popularity
  counts, associations, ...) for every item, one row per requested user.
  Each concrete model implements this with matrix products / broadcasting
  instead of per-user loops.
* ``unit_scores_batch(users, n)`` — the batch rows mapped onto ``[0, 1]``
  (row-wise min-max normalization by default), used as the accuracy term
  ``a(i)`` of the GANC value function (Eq. III.1).  The non-personalized
  ``Pop`` recommender overrides this with binary top-N membership, exactly as
  the paper specifies.
* ``predict_scores(user, items)`` / ``score_all_items(user)`` /
  ``unit_scores(user, n)`` — single-user convenience views over the same
  computations.

``recommend`` and ``recommend_all`` always exclude the user's train items so
that top-N sets follow the "all unrated items" protocol; ``recommend_all``
processes users in memory-bounded blocks (``O(block_size × |I|)`` peak) with
row-wise 2-D selection, and uses the canonical stable tie-breaking of
:mod:`repro.utils.topn` so batched and per-user results agree exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError, NotFittedError
from repro.parallel.executor import Executor, resolve_executor
from repro.parallel.tasks import RecommendBlockTask
from repro.registry import ParamsMixin
from repro.utils.normalization import normalize_rows
from repro.utils.topn import (
    iter_user_blocks,
    mask_pairs,
    top_n_indices,
    top_n_matrix,
)


@dataclass(frozen=True)
class FittedTopN:
    """Top-N sets for every user, as produced by :meth:`Recommender.recommend_all`.

    Attributes
    ----------
    items:
        Integer array of shape ``(n_users, n)``; row ``u`` holds the top-N
        item indices of user ``u`` in rank order.  Rows may contain ``-1``
        padding when a user has fewer than ``n`` candidates.
    """

    items: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.items, dtype=np.int64)
        if arr.ndim != 2:
            raise ConfigurationError(f"top-N items must be 2-D, got shape {arr.shape}")
        object.__setattr__(self, "items", arr)

    @property
    def n_users(self) -> int:
        """Number of users covered by this collection."""
        return int(self.items.shape[0])

    @property
    def n(self) -> int:
        """Size of each top-N set."""
        return int(self.items.shape[1])

    def for_user(self, user: int) -> np.ndarray:
        """Valid (non-padding) recommendations of ``user`` in rank order."""
        row = self.items[user]
        return row[row >= 0]

    def as_dict(self) -> dict[int, np.ndarray]:
        """Return a ``{user: item array}`` mapping (drops padding)."""
        return {u: self.for_user(u) for u in range(self.n_users)}


class Recommender(ParamsMixin, ABC):
    """Abstract base class of all accuracy recommenders.

    Besides the scoring contract below, every recommender is introspectable:
    :meth:`~repro.registry.ParamsMixin.get_params` reports the constructor
    configuration and ``from_params`` rebuilds an unfitted clone, which is
    what makes pipeline specs round-trippable.
    """

    #: Whether :meth:`delta_refit` is implemented.  Models whose fitted state
    #: can absorb appended interactions exactly (bit-identical to a
    #: from-scratch fit) set this True; everything else keeps the full-refit
    #: fallback the streaming path (:mod:`repro.serving.update`) applies.
    supports_delta_refit: bool = False

    #: Set by every :meth:`delta_refit` implementation: whether the last
    #: delta refit changed any fitted state (as persisted by
    #: ``Pipeline.save``).  A pure cold-start delta — new users, no new
    #: interactions or items — leaves counts and similarities bitwise
    #: intact, which lets the streaming compile path
    #: (:mod:`repro.serving.update`) recompute only the arrivals' rows.
    #: The default is the conservative answer.
    delta_changed_state: bool = True

    def __init__(self) -> None:
        self._train: RatingDataset | None = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    @abstractmethod
    def fit(self, train: RatingDataset) -> "Recommender":
        """Fit the model on the train interactions and return ``self``."""

    def delta_refit(self, train: RatingDataset) -> "Recommender":
        """Absorb the interactions appended to the current train data.

        ``train`` must be an *extension* of :attr:`train_data` — the dataset
        returned by :meth:`RatingDataset.extend` (or
        :func:`repro.data.incremental.extend_split`), whose interaction
        arrays start with the fitted train's arrays.  The contract is
        strict: after ``delta_refit(train)`` every scoring path must produce
        exactly the bytes a fresh ``fit(train)`` would.  The base class does
        not support it; callers should fall back to :meth:`fit` on
        :class:`~repro.exceptions.ConfigurationError`.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not support delta refits; call fit()"
        )

    def _delta_interactions(
        self, train: RatingDataset
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Validate the extension contract and return the appended triples."""
        self._check_fitted()
        old = self.train_data
        if (
            train.n_users < old.n_users
            or train.n_items < old.n_items
            or train.n_ratings < old.n_ratings
        ):
            raise ConfigurationError(
                "delta_refit needs an extension of the fitted train data; got a "
                f"{train.n_users}x{train.n_items} dataset with {train.n_ratings} "
                f"ratings vs the fitted {old.n_users}x{old.n_items} with "
                f"{old.n_ratings}"
            )
        k = old.n_ratings
        if not (
            np.array_equal(train.user_indices[:k], old.user_indices)
            and np.array_equal(train.item_indices[:k], old.item_indices)
            and np.array_equal(train.ratings[:k], old.ratings)
        ):
            raise ConfigurationError(
                "delta_refit needs a dataset created by extend() on the fitted "
                "train data (the fitted interactions must be a prefix); refit "
                "from scratch instead"
            )
        return (
            train.user_indices[k:],
            train.item_indices[k:],
            train.ratings[k:],
        )

    def _mark_fitted(self, train: RatingDataset) -> None:
        self._train = train

    @property
    def train_data(self) -> RatingDataset:
        """The train dataset this model was fitted on."""
        self._check_fitted()
        assert self._train is not None
        return self._train

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._train is not None

    def _check_fitted(self) -> None:
        if self._train is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before it can be used"
            )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    @abstractmethod
    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Raw model scores of ``items`` for ``user`` (higher is better)."""

    def _resolve_users(self, users: np.ndarray | None) -> np.ndarray:
        """Normalize a ``users`` argument (``None`` means every user)."""
        if users is None:
            return np.arange(self.train_data.n_users, dtype=np.int64)
        return np.atleast_1d(np.asarray(users, dtype=np.int64))

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Raw score rows for a block of users, shape ``(len(users), n_items)``.

        ``users=None`` scores every user.  The returned array is always a
        fresh, writable float64 block.  Concrete models override this with a
        genuinely vectorized computation; this fallback stacks per-user
        ``predict_scores`` rows so third-party subclasses keep working.
        """
        self._check_fitted()
        users = self._resolve_users(users)
        n_items = self.train_data.n_items
        if users.size == 0:
            return np.empty((0, n_items), dtype=np.float64)
        all_items = np.arange(n_items, dtype=np.int64)
        return np.stack(
            [
                np.asarray(self.predict_scores(int(u), all_items), dtype=np.float64)
                for u in users
            ]
        )

    def score_all_items(self, user: int) -> np.ndarray:
        """Raw scores of every item in the universe for ``user``."""
        return self.predict_matrix(np.asarray([user], dtype=np.int64))[0]

    def unit_scores_batch(self, users: np.ndarray | None, n: int) -> np.ndarray:
        """Accuracy scores ``a(i)`` in ``[0, 1]``, one row per user in the block.

        The default maps the raw score block through row-wise min-max
        normalization.  ``n`` is unused by score-based models but lets
        membership-based models (Pop) know the top-N size.
        """
        del n  # only membership-based recommenders need the top-N size
        return normalize_rows(self.predict_matrix(users))

    def unit_scores(self, user: int, n: int) -> np.ndarray:
        """Single-user view of :meth:`unit_scores_batch`."""
        return self.unit_scores_batch(np.asarray([user], dtype=np.int64), n)[0]

    # ------------------------------------------------------------------ #
    # Recommendation
    # ------------------------------------------------------------------ #
    def recommend(
        self,
        user: int,
        n: int,
        *,
        exclude_items: np.ndarray | None = None,
        scores: np.ndarray | None = None,
    ) -> np.ndarray:
        """Top-``n`` unseen items for ``user`` in decreasing score order.

        ``exclude_items`` defaults to the user's train items.  ``scores``
        lets callers that already hold the user's raw score row (e.g. a slice
        of a :meth:`predict_matrix` block) skip recomputing it.
        """
        self._check_fitted()
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if scores is None:
            scores = self.score_all_items(user)
        scores = np.asarray(scores, dtype=np.float64).copy()
        if exclude_items is None:
            exclude_items = self.train_data.user_items(user)
        if exclude_items.size:
            scores[np.asarray(exclude_items, dtype=np.int64)] = -np.inf
        return top_n_indices(scores, n)

    def recommend_block(self, users: np.ndarray, n: int) -> np.ndarray:
        """Top-``n`` rows for a block of users (train items excluded).

        Returns a ``(len(users), n)`` int64 array padded with ``-1``, computed
        with one score-matrix evaluation, one fancy-indexed exclusion mask and
        one row-wise 2-D selection.
        """
        self._check_fitted()
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        users = np.asarray(users, dtype=np.int64)
        scores = self.predict_matrix(users)
        rows, cols = self.train_data.user_items_batch(users)
        mask_pairs(scores, rows, cols)
        return top_n_matrix(scores, n)

    def recommend_all(
        self,
        n: int,
        *,
        block_size: int | None = None,
        executor: Executor | None = None,
        n_jobs: int | None = None,
    ) -> FittedTopN:
        """Top-``n`` sets for every user (train items excluded).

        Users are processed in blocks of ``block_size`` (default
        :data:`repro.utils.topn.DEFAULT_BLOCK_SIZE`) so peak memory stays
        ``O(block_size × n_items)`` while the scoring itself runs as 2-D
        array operations.  The blocks are independent, so they can fan out
        to an :class:`~repro.parallel.Executor` (or ``n_jobs`` workers of
        the default thread backend); every backend produces the same bytes
        as the serial loop.
        """
        self._check_fitted()
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        n_users = self.train_data.n_users
        blocks = list(iter_user_blocks(n_users, block_size))
        task = RecommendBlockTask(self, n)
        out = np.empty((n_users, n), dtype=np.int64)
        executor = resolve_executor(executor, n_jobs)
        for users, rows in zip(blocks, executor.map_blocks(task, blocks)):
            out[users] = rows
        return FittedTopN(items=out)
