"""User-based k-nearest-neighbour collaborative filtering.

The classic memory-based model of Herlocker et al. (1999), included as an
extra baseline: the score of an unseen item is the similarity-weighted average
of the ratings given by the ``k`` most similar users, with cosine similarity
over mean-centered rating vectors.  The paper's related-work section notes
that this family does not scale to Netflix-size data, which is also visible in
the benchmark timings here — it is provided for completeness and for the
examples, not as a competitive baseline.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender


class UserKNN(Recommender):
    """User-user cosine KNN on mean-centered ratings.

    Parameters
    ----------
    k:
        Number of neighbours contributing to each prediction.
    shrinkage:
        Additive shrinkage on the similarity denominator.
    min_overlap:
        Minimum number of co-rated items for a pair of users to be considered
        neighbours at all.
    """

    def __init__(self, k: int = 40, *, shrinkage: float = 10.0, min_overlap: int = 1) -> None:
        super().__init__()
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if shrinkage < 0:
            raise ConfigurationError(f"shrinkage must be non-negative, got {shrinkage}")
        if min_overlap < 1:
            raise ConfigurationError(f"min_overlap must be >= 1, got {min_overlap}")
        self.k = int(k)
        self.shrinkage = float(shrinkage)
        self.min_overlap = int(min_overlap)
        self.similarity_: np.ndarray | None = None
        self.user_means_: np.ndarray | None = None
        self._centered = None
        self._indicator = None

    def fit(self, train: RatingDataset) -> "UserKNN":
        """Compute the user-user similarity matrix from mean-centered ratings."""
        matrix = train.to_csr().astype(np.float64)
        counts = np.diff(matrix.indptr)
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        means = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)

        centered = matrix.copy()
        # Subtract each user's mean from their observed ratings only.
        for user in range(train.n_users):
            start, stop = centered.indptr[user], centered.indptr[user + 1]
            centered.data[start:stop] -= means[user]

        gram = (centered @ centered.T).toarray()
        norms = np.sqrt(np.maximum(np.diag(gram), 1e-12))
        similarity = gram / (np.outer(norms, norms) + self.shrinkage)

        # Zero out pairs with insufficient co-rated items.
        binary = matrix.copy()
        binary.data = np.ones_like(binary.data)
        overlap = (binary @ binary.T).toarray()
        similarity[overlap < self.min_overlap] = 0.0
        np.fill_diagonal(similarity, 0.0)

        if self.k < train.n_users - 1:
            for user in range(train.n_users):
                row = similarity[user]
                if np.count_nonzero(row) > self.k:
                    threshold = np.partition(np.abs(row), -self.k)[-self.k]
                    row[np.abs(row) < threshold] = 0.0

        self.similarity_ = similarity
        self.user_means_ = means
        # Cache the mean-centered ratings and the binary rating indicator for
        # the batched score path (both sparse, U x I).
        self._centered = centered
        self._indicator = binary
        self._mark_fitted(train)
        return self

    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Neighbour-weighted, mean-centered rating predictions."""
        self._check_fitted()
        assert self.similarity_ is not None and self.user_means_ is not None
        items = np.asarray(items, dtype=np.int64)
        weights = self.similarity_[user]
        neighbours = np.flatnonzero(weights != 0.0)
        if neighbours.size == 0:
            return np.full(items.size, self.user_means_[user], dtype=np.float64)

        csc = self.train_data.to_csc()
        scores = np.full(items.size, self.user_means_[user], dtype=np.float64)
        neighbour_means = self.user_means_
        for position, item in enumerate(items):
            start, stop = csc.indptr[item], csc.indptr[item + 1]
            raters = csc.indices[start:stop]
            ratings = csc.data[start:stop]
            mask = np.isin(raters, neighbours)
            if not mask.any():
                continue
            raters, ratings = raters[mask], ratings[mask]
            sims = weights[raters]
            denom = np.abs(sims).sum()
            if denom <= 0:
                continue
            centered = ratings - neighbour_means[raters]
            scores[position] = self.user_means_[user] + float(sims @ centered) / denom
        return scores

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Neighbour predictions for a block of users via sparse products.

        With the block's similarity rows ``W`` (dense, B x U), the deviation
        numerator is ``W @ C`` against the cached mean-centered rating matrix
        ``C`` and the weight mass is ``|W| @ B`` against the binary rating
        indicator ``B``; items no neighbour rated fall back to the user mean.
        """
        self._check_fitted()
        assert self.similarity_ is not None and self.user_means_ is not None
        assert self._centered is not None and self._indicator is not None
        users = self._resolve_users(users)
        weights = self.similarity_[users]
        numerator = np.asarray(weights @ self._centered, dtype=np.float64)
        mass = np.asarray(np.abs(weights) @ self._indicator, dtype=np.float64)
        deviation = np.divide(
            numerator, mass, out=np.zeros_like(numerator), where=mass > 0.0
        )
        return self.user_means_[users, None] + deviation
