"""User-based k-nearest-neighbour collaborative filtering.

The classic memory-based model of Herlocker et al. (1999), included as an
extra baseline: the score of an unseen item is the similarity-weighted average
of the ratings given by the ``k`` most similar users, with cosine similarity
over mean-centered rating vectors.  The paper's related-work section notes
that this family does not scale to Netflix-size data, which is also visible in
the benchmark timings here — it is provided for completeness and for the
examples, not as a competitive baseline.

The fit is computed in user-row blocks (restricted sparse products
``C[block] @ Cᵀ``), so the dense ``|U| x |U|`` gram matrix is never
materialized; each block's similarity rows walk exactly the float operations
of the original full-gram implementation, so the result is bit-identical
(scipy evaluates restricted products with the same per-entry accumulation
order as the full product — the same guarantee the delta-refit layer relies
on).  Up to ``dense_similarity_limit`` users the per-row top-k graph is
stored dense, exactly as before; beyond it the rows are collected into a
sparse CSR matrix and the score paths switch to sparse products.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender

# User rows per fit block: bounds the blocked gram workspace to
# ``block × n_users`` floats (×2 for the co-rating overlap counts).
_FIT_BLOCK = 1024


class UserKNN(Recommender):
    """User-user cosine KNN on mean-centered ratings.

    Parameters
    ----------
    k:
        Number of neighbours contributing to each prediction.
    shrinkage:
        Additive shrinkage on the similarity denominator.
    min_overlap:
        Minimum number of co-rated items for a pair of users to be considered
        neighbours at all.
    dense_similarity_limit:
        Largest user count for which the top-k similarity graph is stored as
        a dense ``|U| x |U|`` array (the original representation, byte-for-
        byte).  Larger universes store the same rows as sparse CSR and score
        through sparse products — the stored *values* are identical either
        way; only the container changes.
    """

    def __init__(
        self,
        k: int = 40,
        *,
        shrinkage: float = 10.0,
        min_overlap: int = 1,
        dense_similarity_limit: int = 20_000,
    ) -> None:
        super().__init__()
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if shrinkage < 0:
            raise ConfigurationError(f"shrinkage must be non-negative, got {shrinkage}")
        if min_overlap < 1:
            raise ConfigurationError(f"min_overlap must be >= 1, got {min_overlap}")
        if dense_similarity_limit < 0:
            raise ConfigurationError(
                f"dense_similarity_limit must be non-negative, got "
                f"{dense_similarity_limit}"
            )
        self.k = int(k)
        self.shrinkage = float(shrinkage)
        self.min_overlap = int(min_overlap)
        self.dense_similarity_limit = int(dense_similarity_limit)
        self.similarity_: np.ndarray | sparse.csr_matrix | None = None
        self.user_means_: np.ndarray | None = None
        self._centered = None
        self._indicator = None

    def fit(self, train: RatingDataset) -> "UserKNN":
        """Compute the user-user similarity graph from mean-centered ratings.

        The computation runs block-by-block over user rows; per-row float
        operations (normalization, shrinkage, overlap gate, top-k threshold
        on ``|similarity|``) are those of the full-gram implementation, so a
        dense-stored result is bit-identical to the historical one.
        """
        n_users = train.n_users
        matrix = train.to_csr().astype(np.float64)
        counts = np.diff(matrix.indptr)
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        means = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)

        centered = matrix.copy()
        # Subtract each user's mean from their observed ratings only.
        for user in range(n_users):
            start, stop = centered.indptr[user], centered.indptr[user + 1]
            centered.data[start:stop] -= means[user]

        binary = matrix.copy()
        binary.data = np.ones_like(binary.data)
        centered_t = centered.T.tocsc()
        binary_t = binary.T.tocsc()

        # Row norms: the gram diagonal, recovered from doubly-restricted
        # products ``C[block] @ Cᵀ[:, block]`` — scipy accumulates restricted
        # products entry-for-entry like the full ``C @ Cᵀ``, so these are the
        # bit-exact diagonal values without an |U|² intermediate (an
        # elementwise square-and-sum would differ in the last ulp).
        diagonal_blocks = []
        for start in range(0, n_users, _FIT_BLOCK):
            stop = min(start + _FIT_BLOCK, n_users)
            product = (centered[start:stop] @ centered_t[:, start:stop]).toarray()
            diagonal_blocks.append(np.asarray(product).diagonal())
        norms = np.sqrt(np.maximum(np.concatenate(diagonal_blocks), 1e-12))

        dense = n_users <= self.dense_similarity_limit
        if dense:
            similarity: np.ndarray | sparse.csr_matrix = np.zeros(
                (n_users, n_users), dtype=np.float64
            )
        else:
            sparse_rows: list[np.ndarray] = []
            sparse_cols: list[np.ndarray] = []
            sparse_vals: list[np.ndarray] = []

        sparsify = self.k < n_users - 1
        for start in range(0, n_users, _FIT_BLOCK):
            stop = min(start + _FIT_BLOCK, n_users)
            block = (centered[start:stop] @ centered_t).toarray()
            block /= np.outer(norms[start:stop], norms) + self.shrinkage

            # Zero out pairs with insufficient co-rated items.
            overlap = (binary[start:stop] @ binary_t).toarray()
            block[overlap < self.min_overlap] = 0.0
            local = np.arange(stop - start)
            block[local, local + start] = 0.0

            if sparsify:
                for offset in local:
                    row = block[offset]
                    if np.count_nonzero(row) > self.k:
                        threshold = np.partition(np.abs(row), -self.k)[-self.k]
                        row[np.abs(row) < threshold] = 0.0
            if dense:
                similarity[start:stop] = block
            else:
                nz_rows, nz_cols = np.nonzero(block)
                sparse_rows.append(nz_rows + start)
                sparse_cols.append(nz_cols)
                sparse_vals.append(block[nz_rows, nz_cols])

        if not dense:
            similarity = sparse.csr_matrix(
                (
                    np.concatenate(sparse_vals) if sparse_vals else [],
                    (
                        np.concatenate(sparse_rows) if sparse_rows else [],
                        np.concatenate(sparse_cols) if sparse_cols else [],
                    ),
                ),
                shape=(n_users, n_users),
            )

        self.similarity_ = similarity
        self.user_means_ = means
        # Cache the mean-centered ratings and the binary rating indicator for
        # the batched score path (both sparse, U x I).
        self._centered = centered
        self._indicator = binary
        self._mark_fitted(train)
        return self

    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Neighbour-weighted, mean-centered rating predictions."""
        self._check_fitted()
        assert self.similarity_ is not None and self.user_means_ is not None
        items = np.asarray(items, dtype=np.int64)
        if sparse.issparse(self.similarity_):
            weights = np.asarray(self.similarity_[user].toarray()).ravel()
        else:
            weights = self.similarity_[user]
        neighbours = np.flatnonzero(weights != 0.0)
        if neighbours.size == 0:
            return np.full(items.size, self.user_means_[user], dtype=np.float64)

        csc = self.train_data.to_csc()
        scores = np.full(items.size, self.user_means_[user], dtype=np.float64)
        neighbour_means = self.user_means_
        for position, item in enumerate(items):
            start, stop = csc.indptr[item], csc.indptr[item + 1]
            raters = csc.indices[start:stop]
            ratings = csc.data[start:stop]
            mask = np.isin(raters, neighbours)
            if not mask.any():
                continue
            raters, ratings = raters[mask], ratings[mask]
            sims = weights[raters]
            denom = np.abs(sims).sum()
            if denom <= 0:
                continue
            centered = ratings - neighbour_means[raters]
            scores[position] = self.user_means_[user] + float(sims @ centered) / denom
        return scores

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Neighbour predictions for a block of users via sparse products.

        With the block's similarity rows ``W`` (dense or sparse, B x U), the
        deviation numerator is ``W @ C`` against the cached mean-centered
        rating matrix ``C`` and the weight mass is ``|W| @ B`` against the
        binary rating indicator ``B``; items no neighbour rated fall back to
        the user mean.  Sparse similarity rows keep both products
        sparse-sparse, so only the block's score rows are ever densified.
        """
        self._check_fitted()
        assert self.similarity_ is not None and self.user_means_ is not None
        assert self._centered is not None and self._indicator is not None
        users = self._resolve_users(users)
        weights = self.similarity_[users]
        if sparse.issparse(weights):
            numerator = np.asarray(
                (weights @ self._centered).toarray(), dtype=np.float64
            )
            mass = np.asarray(
                (abs(weights) @ self._indicator).toarray(), dtype=np.float64
            )
        else:
            numerator = np.asarray(weights @ self._centered, dtype=np.float64)
            mass = np.asarray(np.abs(weights) @ self._indicator, dtype=np.float64)
        deviation = np.divide(
            numerator, mass, out=np.zeros_like(numerator), where=mass > 0.0
        )
        return self.user_means_[users, None] + deviation
