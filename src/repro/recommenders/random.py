"""The ``Rand`` recommender: uniformly random suggestions.

Rand achieves the best possible coverage and high novelty but essentially zero
accuracy; the paper uses it as the coverage-extreme reference point in the
trade-off plots (Figure 6).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.recommenders.base import Recommender
from repro.utils.rng import SeedLike, ensure_rng


class RandomRecommender(Recommender):
    """Assign every (user, item) pair an i.i.d. uniform score.

    Scores are drawn lazily per user from a deterministic per-user stream, so
    the same seed always reproduces the same recommendation sets regardless of
    the order users are queried in.
    """

    def __init__(self, *, seed: SeedLike = None) -> None:
        super().__init__()
        self._seed = seed
        self._base_seed: int | None = None

    def fit(self, train: RatingDataset) -> "RandomRecommender":
        """Record the item universe; no learning is involved."""
        rng = ensure_rng(self._seed)
        self._base_seed = int(rng.integers(0, 2**31 - 1))
        self._mark_fitted(train)
        return self

    def _user_scores(self, user: int) -> np.ndarray:
        assert self._base_seed is not None
        user_rng = np.random.default_rng(self._base_seed + int(user))
        return user_rng.random(self.train_data.n_items)

    def predict_scores(self, user: int, items: np.ndarray) -> np.ndarray:
        """Uniform random scores for ``items`` (deterministic per user+seed)."""
        self._check_fitted()
        return self._user_scores(user)[np.asarray(items, dtype=np.int64)]

    def predict_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """One uniform random row per user.

        The per-user streams are what makes the model order-independent and
        reproducible, so row generation is inherently per-user; the batch
        path still amortizes all other per-call overhead, and each row is
        bit-identical to the single-user stream.
        """
        self._check_fitted()
        users = self._resolve_users(users)
        n_items = self.train_data.n_items
        out = np.empty((users.size, n_items), dtype=np.float64)
        for row, user in enumerate(users):
            out[row] = self._user_scores(int(user))
        return out
