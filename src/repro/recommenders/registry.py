"""Name-based construction of accuracy recommenders.

The experiment harness refers to recommenders with the short names the paper
uses (``Pop``, ``Rand``, ``RSVD``, ``PSVD10``, ``PSVD100``, ``CofiR100``).
:func:`make_recommender` turns those names into configured model instances so
an experiment definition is a plain list of strings.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender
from repro.recommenders.cofirank import CofiRank
from repro.recommenders.knn import ItemKNN
from repro.recommenders.popularity import MostPopular
from repro.recommenders.puresvd import PureSVD
from repro.recommenders.random import RandomRecommender
from repro.recommenders.rsvd import RSVD
from repro.recommenders.user_knn import UserKNN

RecommenderFactory = Callable[..., Recommender]


RECOMMENDER_REGISTRY: Mapping[str, RecommenderFactory] = {
    "pop": lambda **kw: MostPopular(),
    "rand": lambda **kw: RandomRecommender(seed=kw.get("seed", 0)),
    "rsvd": lambda **kw: RSVD(
        n_factors=kw.get("n_factors", 20),
        n_epochs=kw.get("n_epochs", 20),
        learning_rate=kw.get("learning_rate", 0.01),
        reg=kw.get("reg", 0.05),
        seed=kw.get("seed", 0),
    ),
    "rsvdn": lambda **kw: RSVD(
        n_factors=kw.get("n_factors", 20),
        n_epochs=kw.get("n_epochs", 20),
        learning_rate=kw.get("learning_rate", 0.01),
        reg=kw.get("reg", 0.05),
        non_negative=True,
        seed=kw.get("seed", 0),
    ),
    "psvd10": lambda **kw: PureSVD(n_factors=10),
    "psvd100": lambda **kw: PureSVD(n_factors=100),
    "psvd": lambda **kw: PureSVD(n_factors=kw.get("n_factors", 100)),
    "cofir100": lambda **kw: CofiRank(
        n_factors=kw.get("n_factors", 100),
        reg=kw.get("reg", 10.0),
        n_iterations=kw.get("n_iterations", 5),
        seed=kw.get("seed", 0),
    ),
    "itemknn": lambda **kw: ItemKNN(k=kw.get("k", 50)),
    "userknn": lambda **kw: UserKNN(k=kw.get("k", 40)),
}


def make_recommender(name: str, **kwargs: object) -> Recommender:
    """Instantiate a recommender from its (case-insensitive) registry name."""
    key = name.strip().lower()
    if key not in RECOMMENDER_REGISTRY:
        raise ConfigurationError(
            f"unknown recommender {name!r}; available: {sorted(RECOMMENDER_REGISTRY)}"
        )
    return RECOMMENDER_REGISTRY[key](**kwargs)
