"""Accuracy-recommender registrations in the unified component registry.

The experiment harness and the pipeline API refer to recommenders with the
short names the paper uses (``Pop``, ``Rand``, ``RSVD``, ``PSVD10``,
``PSVD100``, ``CofiR100``).  This module is the single source of truth for
those names: it registers every model with :func:`repro.registry.register`,
together with the paper's experiment hyper-parameters and the rank-scaling
rule for surrogate datasets (``scale_hint`` multiplies the SVD-family latent
ranks so the factors-to-items ratio stays comparable to the full-size
datasets — a 100-factor PureSVD on a 300-item surrogate would otherwise
reconstruct the zero-imputed matrix almost exactly and lose all
generalization).

Names of the ``psvdNN`` / ``cofirNN`` families resolve dynamically for any
rank ``NN``, so ``make_recommender("psvd37")`` works without a dedicated
entry.
"""

from __future__ import annotations

from typing import Mapping

from repro.recommenders.base import Recommender
from repro.recommenders.cofirank import CofiRank
from repro.recommenders.knn import ItemKNN
from repro.recommenders.popularity import MostPopular
from repro.recommenders.puresvd import PureSVD
from repro.recommenders.random import RandomRecommender
from repro.recommenders.rsvd import RSVD
from repro.recommenders.user_knn import UserKNN
from repro.registry import ComponentEntry, create, legacy_view, register, register_resolver

#: Hyper-parameters shared by the CofiRank family (Section V of the paper).
_COFIR_DEFAULTS = {"reg": 10.0, "n_iterations": 3}
#: RSVD with the paper's cross-validated training schedule (Table V).
_RSVD_DEFAULTS = {"n_factors": 20, "n_epochs": 30, "learning_rate": 0.02, "reg": 0.05}

register("recommender", "pop")(MostPopular)
register("recommender", "rand", defaults={"seed": 0})(RandomRecommender)
register("recommender", "rsvd", defaults=_RSVD_DEFAULTS)(RSVD)
register("recommender", "rsvdn", defaults={**_RSVD_DEFAULTS, "non_negative": True})(RSVD)
register(
    "recommender", "psvd",
    defaults={"n_factors": 100}, scaled_params={"n_factors": 3},
)(PureSVD)
register(
    "recommender", "psvd10",
    defaults={"n_factors": 10}, scaled_params={"n_factors": 3},
)(PureSVD)
register(
    "recommender", "psvd100",
    defaults={"n_factors": 100}, scaled_params={"n_factors": 3},
)(PureSVD)
register(
    "recommender", "cofir100",
    defaults={**_COFIR_DEFAULTS, "n_factors": 100}, scaled_params={"n_factors": 5},
)(CofiRank)
register("recommender", "itemknn", defaults={"k": 50})(ItemKNN)
register("recommender", "userknn", defaults={"k": 40})(UserKNN)


def _factor_family_resolver(name: str) -> ComponentEntry | None:
    """Resolve ``psvdNN`` / ``cofirNN`` names for arbitrary ranks ``NN``."""
    for prefix, cls, minimum, extra in (
        ("psvd", PureSVD, 3, {}),
        ("cofir", CofiRank, 5, _COFIR_DEFAULTS),
    ):
        suffix = name.removeprefix(prefix)
        if suffix != name and suffix.isdigit() and int(suffix) >= 1:
            return ComponentEntry(
                kind="recommender",
                name=name,
                cls=cls,
                defaults={**extra, "n_factors": int(suffix)},
                scaled_params={"n_factors": minimum},
            )
    return None


register_resolver("recommender", _factor_family_resolver)


def make_recommender(name: str, **kwargs: object) -> Recommender:
    """Instantiate a recommender from its (case-insensitive) registry name.

    Unknown hyper-parameters raise :class:`ConfigurationError`; the reserved
    ``seed`` / ``scale_hint`` kwargs behave as described in
    :mod:`repro.registry`.
    """
    return create("recommender", name, **kwargs)


#: Name → factory view of the registered recommenders (kept for callers that
#: iterate the available names; construction itself goes through ``create``).
RECOMMENDER_REGISTRY: Mapping[str, object] = legacy_view("recommender")
