"""Figures 3 and 4: effect of the OSLG sample size on accuracy and coverage.

The paper sweeps the sample size ``S`` of GANC(ARec, θG, Dyn) on ML-1M
(Figure 3) and MT-200K (Figure 4) for four accuracy recommenders and plots
F-measure@5 against Coverage@5.  The qualitative finding: increasing S raises
coverage and (for most accuracy recommenders) slightly lowers F-measure, which
is why the paper fixes S = 500 for the remaining experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.evaluation.evaluator import Evaluator
from repro.experiments.datasets import load_experiment_split
from repro.experiments.runner import ExperimentTable, build_accuracy_recommender
from repro.pipeline import Pipeline, ganc_spec
from repro.preferences.generalized import GeneralizedPreference
from repro.utils.rng import SeedLike

#: Accuracy recommenders the paper sweeps in Figures 3-4, in display order.
FIGURE3_ARECS = ("psvd100", "psvd10", "pop", "rsvd")


@dataclass(frozen=True)
class SampleSizePoint:
    """One point of the sweep: a sample size and its metric values."""

    accuracy_recommender: str
    sample_size: int
    f_measure: float
    coverage: float


def run_sample_size_sweep(
    dataset_key: str,
    *,
    sample_sizes: Sequence[int] = (100, 300, 500, 700, 900),
    accuracy_recommenders: Sequence[str] = FIGURE3_ARECS,
    n: int = 5,
    bandwidth: float | str = "silverman",
    scale: float = 1.0,
    seed: SeedLike = 0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> tuple[list[SampleSizePoint], ExperimentTable]:
    """Sweep the OSLG sample size for GANC(ARec, θG, Dyn) on one dataset.

    The sample sizes are clipped to the number of users of the (possibly
    scaled-down) surrogate dataset, preserving the sweep's shape.
    """
    _, split = load_experiment_split(dataset_key, scale=scale, seed=seed)
    evaluator = Evaluator(split, n=n, block_size=block_size, n_jobs=n_jobs, backend=backend)
    theta = GeneralizedPreference().estimate(split.train)

    points: list[SampleSizePoint] = []
    table = ExperimentTable(
        title=f"Figures 3/4: OSLG sample size sweep on {dataset_key}",
        headers=["ARec", "S", "F-measure@N", "Coverage@N"],
    )
    n_users = split.train.n_users
    for arec_name in accuracy_recommenders:
        arec = build_accuracy_recommender(arec_name, seed=seed, scale_hint=scale)
        arec.fit(split.train)
        for requested in sample_sizes:
            sample_size = max(1, min(int(requested), n_users))
            spec = ganc_spec(
                dataset=dataset_key, arec=arec_name, theta="thetaG", coverage="dyn",
                n=n, sample_size=sample_size, bandwidth=bandwidth, optimizer="oslg",
                scale=scale, seed=seed, block_size=block_size, n_jobs=n_jobs,
                backend=backend,
            )
            pipeline = Pipeline(spec, recommender=arec, preference=theta).fit(split)
            run = evaluator.evaluate_recommendations(
                pipeline.recommend_all(), algorithm=f"GANC({arec_name}, thetaG, Dyn) S={requested}"
            )
            point = SampleSizePoint(
                accuracy_recommender=arec_name,
                sample_size=int(requested),
                f_measure=run.report.f_measure,
                coverage=run.report.coverage,
            )
            points.append(point)
            table.add_row([arec_name, requested, point.f_measure, point.coverage])
    return points, table


def run_figure3(
    *,
    sample_sizes: Sequence[int] = (100, 300, 500, 700, 900),
    accuracy_recommenders: Sequence[str] = FIGURE3_ARECS,
    bandwidth: float | str = "silverman",
    scale: float = 1.0,
    seed: SeedLike = 0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> tuple[list[SampleSizePoint], ExperimentTable]:
    """Figure 3: the sweep on the ML-1M surrogate."""
    return run_sample_size_sweep(
        "ml1m",
        sample_sizes=sample_sizes,
        accuracy_recommenders=accuracy_recommenders,
        bandwidth=bandwidth,
        scale=scale,
        seed=seed,
        block_size=block_size,
        n_jobs=n_jobs,
        backend=backend,
    )


def run_figure4(
    *,
    sample_sizes: Sequence[int] = (100, 300, 500, 700, 900),
    accuracy_recommenders: Sequence[str] = FIGURE3_ARECS,
    bandwidth: float | str = "silverman",
    scale: float = 1.0,
    seed: SeedLike = 0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> tuple[list[SampleSizePoint], ExperimentTable]:
    """Figure 4: the sweep on the MT-200K surrogate."""
    return run_sample_size_sweep(
        "mt200k",
        sample_sizes=sample_sizes,
        accuracy_recommenders=accuracy_recommenders,
        bandwidth=bandwidth,
        scale=scale,
        seed=seed,
        block_size=block_size,
        n_jobs=n_jobs,
        backend=backend,
    )
