"""Table IV: re-ranking comparison on top of the RSVD rating-prediction model.

For every dataset the paper compares the RSVD base ranking against the
re-ranking baselines (5D with and without A/RR, RBT with the Pop and Avg
criteria, PRA with exchangeable sets of 10 and 20) and two GANC variants
(θT and θG preferences with the Dyn coverage recommender).  Each algorithm is
scored on F-measure@5, Stratified Recall@5, LTAccuracy@5, Coverage@5 and
Gini@5, every metric is ranked across algorithms, and the final column is the
average rank (lower is better) — the paper's headline is that the GANC
variants obtain the lowest average rank on every dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data.split import TrainTestSplit
from repro.evaluation.evaluator import Evaluator
from repro.experiments.datasets import EXPERIMENT_DATASETS, load_experiment_split
from repro.experiments.runner import (
    ExperimentTable,
    TABLE4_METRICS,
    average_ranks,
    build_accuracy_recommender,
    metric_ranks,
)
from repro.metrics.report import MetricReport
from repro.pipeline import Pipeline, ganc_spec
from repro.recommenders.base import Recommender
from repro.rerankers.registry import make_reranker
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class Table4Row:
    """One algorithm's metrics, per-metric ranks and average rank."""

    dataset: str
    algorithm: str
    report: MetricReport
    ranks: Mapping[str, int]
    average_rank: float


AlgorithmBuilder = Callable[[Recommender, TrainTestSplit, int, SeedLike], Mapping[int, np.ndarray]]


def _base_ranking(base: Recommender, split: TrainTestSplit, n: int, seed: SeedLike):
    del split, seed
    return base.recommend_all(n).as_dict()


def _five_d(base, split, n, seed, *, accuracy_filtering=False, rank_by_rankings=False):
    del seed
    reranker = make_reranker(
        "5d",
        base=base,
        accuracy_filtering=accuracy_filtering,
        rank_by_rankings=rank_by_rankings,
    )
    reranker.fit(split.train)
    return reranker.recommend_all(n).as_dict()


def _rbt(base, split, n, seed, *, criterion: str, popularity_floor: int):
    del seed
    reranker = make_reranker(
        "rbt",
        base=base,
        criterion=criterion,
        ranking_threshold=4.5,
        max_rating=5.0,
        popularity_floor=popularity_floor,
    )
    reranker.fit(split.train)
    return reranker.recommend_all(n).as_dict()


def _pra(base, split, n, seed, *, exchangeable_size: int):
    reranker = make_reranker(
        "pra", base=base, exchangeable_size=exchangeable_size, max_steps=20, seed=seed
    )
    reranker.fit(split.train)
    return reranker.recommend_all(n).as_dict()


def _ganc(
    base, split, n, seed, *,
    preference: str, sample_size: int,
    dataset_key: str = "ml100k", scale: float = 1.0, block_size: int | None = None,
    n_jobs: int = 1, backend: str = "thread",
):
    spec = ganc_spec(
        dataset=dataset_key, arec="rsvd", theta=preference, coverage="dyn",
        n=n, sample_size=sample_size, optimizer="oslg", scale=scale,
        seed=seed, block_size=block_size, n_jobs=n_jobs, backend=backend,
    )
    pipeline = Pipeline(spec, recommender=base).fit(split)
    return pipeline.recommend_all().as_dict()


def table4_algorithms(
    *,
    popularity_floor: int = 1,
    sample_size: int = 500,
    dataset_key: str = "ml100k",
    scale: float = 1.0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> dict[str, AlgorithmBuilder]:
    """The nine Table IV algorithms, keyed by the paper's labels."""
    ganc_kwargs = {
        "dataset_key": dataset_key, "scale": scale, "block_size": block_size,
        "n_jobs": n_jobs, "backend": backend,
    }
    return {
        "RSVD": _base_ranking,
        "5D(RSVD)": lambda b, s, n, seed: _five_d(b, s, n, seed),
        "5D(RSVD, A, RR)": lambda b, s, n, seed: _five_d(
            b, s, n, seed, accuracy_filtering=True, rank_by_rankings=True
        ),
        "RBT(RSVD, Pop)": lambda b, s, n, seed: _rbt(
            b, s, n, seed, criterion="pop", popularity_floor=popularity_floor
        ),
        "RBT(RSVD, Avg)": lambda b, s, n, seed: _rbt(
            b, s, n, seed, criterion="avg", popularity_floor=popularity_floor
        ),
        "PRA(RSVD, 10)": lambda b, s, n, seed: _pra(b, s, n, seed, exchangeable_size=10),
        "PRA(RSVD, 20)": lambda b, s, n, seed: _pra(b, s, n, seed, exchangeable_size=20),
        "GANC(RSVD, thetaT, Dyn)": lambda b, s, n, seed: _ganc(
            b, s, n, seed, preference="thetaT", sample_size=sample_size, **ganc_kwargs
        ),
        "GANC(RSVD, thetaG, Dyn)": lambda b, s, n, seed: _ganc(
            b, s, n, seed, preference="thetaG", sample_size=sample_size, **ganc_kwargs
        ),
    }


def run_table4_for_dataset(
    dataset_key: str,
    *,
    n: int = 5,
    scale: float = 1.0,
    sample_size: int = 500,
    seed: SeedLike = 0,
    algorithms: Sequence[str] | None = None,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> list[Table4Row]:
    """Run the Table IV comparison on one dataset and return ranked rows."""
    spec = EXPERIMENT_DATASETS[dataset_key]
    _, split = load_experiment_split(dataset_key, scale=scale, seed=seed)
    evaluator = Evaluator(split, n=n, block_size=block_size, n_jobs=n_jobs, backend=backend)

    base = build_accuracy_recommender("rsvd", seed=seed, scale_hint=scale)
    base.fit(split.train)

    # The paper uses TH = 1 except on the two largest datasets where TH = 0.
    popularity_floor = 0 if dataset_key in ("ml10m", "netflix") else 1
    builders = table4_algorithms(
        popularity_floor=popularity_floor, sample_size=sample_size,
        dataset_key=dataset_key, scale=scale, block_size=block_size,
        n_jobs=n_jobs, backend=backend,
    )
    if algorithms is not None:
        builders = {name: builders[name] for name in algorithms}

    reports: list[MetricReport] = []
    names: list[str] = []
    for name, builder in builders.items():
        recommendations = builder(base, split, n, seed)
        run = evaluator.evaluate_recommendations(recommendations, algorithm=name)
        reports.append(run.report)
        names.append(name)

    ranks_per_metric = {
        metric: metric_ranks(reports, metric, higher_is_better=higher)
        for metric, higher in TABLE4_METRICS.items()
    }
    averages = average_ranks(reports)

    rows: list[Table4Row] = []
    for idx, (name, report) in enumerate(zip(names, reports)):
        rows.append(
            Table4Row(
                dataset=spec.title,
                algorithm=name,
                report=report,
                ranks={metric: ranks[idx] for metric, ranks in ranks_per_metric.items()},
                average_rank=averages[idx],
            )
        )
    return rows


def run_table4(
    *,
    datasets: Sequence[str] | None = None,
    n: int = 5,
    scale: float = 1.0,
    sample_size: int = 500,
    seed: SeedLike = 0,
    algorithms: Sequence[str] | None = None,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> tuple[list[Table4Row], ExperimentTable]:
    """Regenerate Table IV across datasets."""
    keys = list(datasets) if datasets is not None else list(EXPERIMENT_DATASETS)
    all_rows: list[Table4Row] = []
    table = ExperimentTable(
        title="Table IV: top-5 re-ranking comparison on RSVD",
        headers=["Dataset", "Algorithm", "F@5", "S@5", "L@5", "C@5", "G@5", "AvgRank"],
    )
    for key in keys:
        rows = run_table4_for_dataset(
            key, n=n, scale=scale, sample_size=sample_size, seed=seed,
            algorithms=algorithms, block_size=block_size, n_jobs=n_jobs, backend=backend,
        )
        all_rows.extend(rows)
        for row in rows:
            table.add_row(
                [
                    row.dataset,
                    row.algorithm,
                    row.report.f_measure,
                    row.report.stratified_recall,
                    row.report.lt_accuracy,
                    row.report.coverage,
                    row.report.gini,
                    round(row.average_rank, 2),
                ]
            )
    return all_rows, table


def best_average_rank_algorithm(rows: Sequence[Table4Row], dataset_title: str) -> str:
    """Name of the algorithm with the lowest average rank on one dataset."""
    candidates = [row for row in rows if row.dataset == dataset_title]
    if not candidates:
        raise ValueError(f"no Table IV rows for dataset {dataset_title!r}")
    return min(candidates, key=lambda row: row.average_rank).algorithm
