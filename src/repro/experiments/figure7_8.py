"""Figures 7-8 (appendix): effect of the test ranking protocol on the metrics.

The appendix study evaluates a panel of standard top-N algorithms under the
two ranking protocols (all unrated items vs rated test-items) on ML-100K and
ML-1M and shows that the rated-test-items protocol inflates accuracy for every
algorithm (including random suggestion), deflates LTAccuracy, and favours
models optimized on observed feedback (RSVD/RSVDN).  This module recomputes
F-measure, Precision, Coverage and LTAccuracy for both protocols so those
relationships can be checked on the surrogate data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.evaluation.evaluator import Evaluator
from repro.evaluation.protocols import AllUnratedItemsProtocol, RatedTestItemsProtocol
from repro.experiments.datasets import EXPERIMENT_DATASETS, load_experiment_split
from repro.experiments.runner import ExperimentTable, build_accuracy_recommender
from repro.metrics.report import MetricReport
from repro.utils.rng import SeedLike

#: The algorithm panel of the appendix study (a representative subset of the
#: sixteen configurations the paper plots).
FIGURE7_8_ALGORITHMS = (
    "rand",
    "pop",
    "rsvd",
    "rsvdn",
    "cofir100",
    "psvd10",
    "psvd40",
    "psvd100",
)


@dataclass(frozen=True)
class ProtocolPoint:
    """One (dataset, algorithm, protocol) evaluation."""

    dataset: str
    algorithm: str
    protocol: str
    report: MetricReport


def run_protocol_comparison(
    dataset_key: str,
    *,
    algorithms: Sequence[str] = FIGURE7_8_ALGORITHMS,
    n: int = 5,
    scale: float = 1.0,
    seed: SeedLike = 0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> list[ProtocolPoint]:
    """Evaluate the algorithm panel under both protocols on one dataset."""
    spec = EXPERIMENT_DATASETS[dataset_key]
    _, split = load_experiment_split(dataset_key, scale=scale, seed=seed)
    protocols = {
        "all_unrated_items": AllUnratedItemsProtocol(),
        "rated_test_items": RatedTestItemsProtocol(),
    }
    points: list[ProtocolPoint] = []
    for name in algorithms:
        model = build_accuracy_recommender(name, seed=seed, scale_hint=scale)
        model.fit(split.train)
        for protocol_name, protocol in protocols.items():
            evaluator = Evaluator(
                split, n=n, protocol=protocol, block_size=block_size,
                n_jobs=n_jobs, backend=backend,
            )
            run = evaluator.evaluate_recommender(model, algorithm=name, fit=False)
            points.append(
                ProtocolPoint(
                    dataset=spec.title,
                    algorithm=name,
                    protocol=protocol_name,
                    report=run.report,
                )
            )
    return points


def run_figure7_8(
    *,
    datasets: Sequence[str] = ("ml100k", "ml1m"),
    algorithms: Sequence[str] = FIGURE7_8_ALGORITHMS,
    n: int = 5,
    scale: float = 1.0,
    seed: SeedLike = 0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> tuple[list[ProtocolPoint], ExperimentTable]:
    """Regenerate the Figures 7-8 protocol comparison."""
    points: list[ProtocolPoint] = []
    table = ExperimentTable(
        title="Figures 7-8: ranking protocol comparison (top-5)",
        headers=[
            "Dataset", "Algorithm", "Protocol",
            "Precision@5", "F-measure@5", "Coverage@5", "LTAccuracy@5",
        ],
    )
    for key in datasets:
        dataset_points = run_protocol_comparison(
            key, algorithms=algorithms, n=n, scale=scale, seed=seed,
            block_size=block_size, n_jobs=n_jobs, backend=backend,
        )
        points.extend(dataset_points)
        for point in dataset_points:
            table.add_row(
                [
                    point.dataset,
                    point.algorithm,
                    point.protocol,
                    point.report.precision,
                    point.report.f_measure,
                    point.report.coverage,
                    point.report.lt_accuracy,
                ]
            )
    return points, table


def protocol_accuracy_inflation(points: Sequence[ProtocolPoint], *, metric: str = "precision") -> float:
    """Average metric difference (rated-test-items minus all-unrated-items).

    A positive value reproduces the appendix's key finding: the rated
    test-items protocol systematically inflates measured accuracy.
    """
    by_key: dict[tuple[str, str], dict[str, float]] = {}
    for point in points:
        by_key.setdefault((point.dataset, point.algorithm), {})[point.protocol] = (
            point.report.metric(metric)
        )
    differences = [
        values["rated_test_items"] - values["all_unrated_items"]
        for values in by_key.values()
        if len(values) == 2
    ]
    return float(sum(differences) / len(differences)) if differences else 0.0
