"""Figure 1: average popularity of rated items versus user activity.

For each user the paper computes the average train popularity of the items the
user rated, bins users by their (normalized) number of rated items, and plots
the mean of those averages per bin.  The downward trend — more active users
rate less popular items on average — motivates the Activity preference
measure θA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.experiments.datasets import EXPERIMENT_DATASETS, load_experiment_split
from repro.experiments.runner import ExperimentTable, SeriesResult
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class PopularityActivityCurve:
    """Binned curve of average rated-item popularity versus user activity."""

    dataset: str
    series: SeriesResult

    def is_decreasing_overall(self) -> bool:
        """Whether the last bin's popularity is below the first bin's."""
        ys = self.series.y
        return len(ys) >= 2 and ys[-1] < ys[0]


def popularity_vs_activity(
    train: RatingDataset,
    *,
    n_bins: int = 10,
    label: str = "dataset",
) -> PopularityActivityCurve:
    """Compute the Figure 1 curve for one train set."""
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    popularity = train.item_popularity().astype(np.float64)
    activity = train.user_activity().astype(np.float64)

    rated_users = np.flatnonzero(activity > 0)
    avg_popularity = np.zeros(train.n_users, dtype=np.float64)
    sums = np.bincount(
        train.user_indices, weights=popularity[train.item_indices], minlength=train.n_users
    )
    avg_popularity[rated_users] = sums[rated_users] / activity[rated_users]

    # Normalize activity to [0, 1] as in the paper's x-axis.
    max_activity = float(activity[rated_users].max())
    min_activity = float(activity[rated_users].min())
    span = max(max_activity - min_activity, 1.0)
    normalized = (activity[rated_users] - min_activity) / span

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    series = SeriesResult(label=label)
    for lo, hi in zip(edges[:-1], edges[1:]):
        in_bin = (normalized >= lo) & (normalized < hi if hi < 1.0 else normalized <= hi)
        if not in_bin.any():
            continue
        center = (lo + hi) / 2.0
        series.add_point(center, float(avg_popularity[rated_users][in_bin].mean()))
    return PopularityActivityCurve(dataset=label, series=series)


def run_figure1(
    *,
    datasets: Sequence[str] | None = None,
    scale: float = 1.0,
    n_bins: int = 10,
    seed: SeedLike = 0,
) -> tuple[list[PopularityActivityCurve], ExperimentTable]:
    """Regenerate the Figure 1 curves for the surrogate datasets."""
    keys = list(datasets) if datasets is not None else list(EXPERIMENT_DATASETS)
    curves: list[PopularityActivityCurve] = []
    table = ExperimentTable(
        title="Figure 1: avg popularity of rated items vs user activity",
        headers=["Dataset", "activity bin", "avg popularity"],
    )
    for key in keys:
        spec = EXPERIMENT_DATASETS[key]
        _, split = load_experiment_split(key, scale=scale, seed=seed)
        curve = popularity_vs_activity(split.train, n_bins=n_bins, label=spec.title)
        curves.append(curve)
        for x, y in zip(curve.series.x, curve.series.y):
            table.add_row([spec.title, round(x, 3), round(y, 2)])
    return curves, table
