"""Figure 6: accuracy versus coverage versus novelty across top-N recommenders.

Section V-B compares GANC against standard top-N algorithms rather than only
against re-rankers of a rating-prediction model.  The accuracy recommender is
chosen per dataset density: Pop on MT-200K (very sparse), PSVD100 elsewhere.
Each algorithm contributes one point per dataset in the F-measure/Coverage and
F-measure/LTAccuracy planes; the paper's arrows go from the bare accuracy
recommender to GANC(ARec, θG, Dyn) to visualize the coverage gained for the
accuracy given up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.evaluation.evaluator import Evaluator
from repro.experiments.datasets import EXPERIMENT_DATASETS, load_experiment_split
from repro.experiments.runner import ExperimentTable, build_accuracy_recommender
from repro.metrics.report import MetricReport
from repro.pipeline import Pipeline, ganc_spec
from repro.preferences.generalized import GeneralizedPreference
from repro.rerankers.registry import make_reranker
from repro.utils.rng import SeedLike

#: Standard top-N algorithms Figure 6 includes alongside the GANC variants.
FIGURE6_BASELINES = ("rand", "pop", "rsvd", "cofir100", "psvd10", "psvd100")


@dataclass(frozen=True)
class Figure6Point:
    """One algorithm's point in the accuracy/coverage/novelty planes."""

    dataset: str
    algorithm: str
    report: MetricReport

    @property
    def f_measure(self) -> float:
        """Accuracy axis value."""
        return self.report.f_measure

    @property
    def coverage(self) -> float:
        """Coverage axis value."""
        return self.report.coverage

    @property
    def lt_accuracy(self) -> float:
        """Novelty axis value."""
        return self.report.lt_accuracy


def accuracy_recommender_for(dataset_key: str) -> str:
    """The paper's per-dataset ARec choice: Pop on MT-200K, PSVD100 otherwise."""
    return "pop" if dataset_key == "mt200k" else "psvd100"


def run_figure6_for_dataset(
    dataset_key: str,
    *,
    n: int = 5,
    scale: float = 1.0,
    sample_size: int = 500,
    seed: SeedLike = 0,
    baselines: Sequence[str] = FIGURE6_BASELINES,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> list[Figure6Point]:
    """Evaluate every Figure 6 algorithm on one dataset."""
    spec = EXPERIMENT_DATASETS[dataset_key]
    _, split = load_experiment_split(dataset_key, scale=scale, seed=seed)
    evaluator = Evaluator(split, n=n, block_size=block_size, n_jobs=n_jobs, backend=backend)
    points: list[Figure6Point] = []

    # Standard top-N baselines.
    for name in baselines:
        model = build_accuracy_recommender(name, seed=seed, scale_hint=scale)
        run = evaluator.evaluate_recommender(model, algorithm=name)
        points.append(Figure6Point(spec.title, name, run.report))

    # The GANC/PRA family shares the density-appropriate accuracy recommender.
    arec_name = accuracy_recommender_for(dataset_key)
    arec = build_accuracy_recommender(arec_name, seed=seed, scale_hint=scale)
    arec.fit(split.train)

    pra = make_reranker("pra", base=arec, exchangeable_size=10, max_steps=20, seed=seed)
    pra.fit(split.train)
    run = evaluator.evaluate_recommendations(
        pra.recommend_all(n), algorithm=f"PRA({arec_name}, 10)"
    )
    points.append(Figure6Point(spec.title, f"PRA({arec_name}, 10)", run.report))

    theta = GeneralizedPreference().estimate(split.train)
    for coverage_label, coverage_name in (("Dyn", "dyn"), ("Stat", "stat"), ("Rand", "rand")):
        pipeline_spec = ganc_spec(
            dataset=dataset_key, arec=arec_name, theta="thetaG",
            coverage=coverage_name, n=n, sample_size=sample_size,
            optimizer="auto", scale=scale, seed=seed, block_size=block_size,
            n_jobs=n_jobs, backend=backend,
        )
        pipeline = Pipeline(pipeline_spec, recommender=arec, preference=theta).fit(split)
        label = f"GANC({arec_name}, thetaG, {coverage_label})"
        run = evaluator.evaluate_recommendations(pipeline.recommend_all(), algorithm=label)
        points.append(Figure6Point(spec.title, label, run.report))
    return points


def run_figure6(
    *,
    datasets: Sequence[str] | None = None,
    n: int = 5,
    scale: float = 1.0,
    sample_size: int = 500,
    seed: SeedLike = 0,
    baselines: Sequence[str] = FIGURE6_BASELINES,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> tuple[list[Figure6Point], ExperimentTable]:
    """Regenerate the Figure 6 scatter data across datasets."""
    keys = list(datasets) if datasets is not None else list(EXPERIMENT_DATASETS)
    points: list[Figure6Point] = []
    table = ExperimentTable(
        title="Figure 6: accuracy vs coverage vs novelty (top-5)",
        headers=["Dataset", "Algorithm", "F-measure@5", "Coverage@5", "LTAccuracy@5"],
    )
    for key in keys:
        dataset_points = run_figure6_for_dataset(
            key, n=n, scale=scale, sample_size=sample_size, seed=seed,
            baselines=baselines, block_size=block_size, n_jobs=n_jobs, backend=backend,
        )
        points.extend(dataset_points)
        for point in dataset_points:
            table.add_row(
                [point.dataset, point.algorithm, point.f_measure, point.coverage, point.lt_accuracy]
            )
    return points, table
