"""Table V (appendix): RSVD / RSVDN hyper-parameter selection.

The paper cross-validates the LIBMF models over the number of latent factors
``g``, the L2 regularization coefficient ``λ`` and the learning rate ``η`` and
reports, per dataset, the configuration with the best RMSE.  This module runs
the same style of grid search (with a validation split carved out of the train
partition) and reports both the full grid and the selected configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.split import RatioSplitter
from repro.experiments.datasets import EXPERIMENT_DATASETS, load_experiment_split
from repro.experiments.runner import ExperimentTable
from repro.metrics.accuracy import rmse
from repro.recommenders.registry import make_recommender
from repro.recommenders.rsvd import RSVD
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class GridPoint:
    """RMSE of one (model, g, λ, η) configuration on the validation split."""

    dataset: str
    model: str
    n_factors: int
    reg: float
    learning_rate: float
    validation_rmse: float


def _validation_rmse(model: RSVD, validation) -> float:
    predictions = np.array(
        [
            model.predict_scores(int(u), np.asarray([i]))[0]
            for u, i in zip(validation.user_indices, validation.item_indices)
        ]
    )
    return rmse(predictions, validation.ratings)


def run_table5_for_dataset(
    dataset_key: str,
    *,
    factors: Sequence[int] = (8, 20, 40),
    regs: Sequence[float] = (0.01, 0.05, 0.1),
    learning_rates: Sequence[float] = (0.01, 0.03),
    n_epochs: int = 15,
    include_non_negative: bool = True,
    scale: float = 1.0,
    seed: SeedLike = 0,
) -> list[GridPoint]:
    """Grid-search RSVD (and optionally RSVDN) on one dataset."""
    spec = EXPERIMENT_DATASETS[dataset_key]
    _, split = load_experiment_split(dataset_key, scale=scale, seed=seed)
    inner = RatioSplitter(0.8, seed=seed).split(split.train)

    models = ["RSVD"] + (["RSVDN"] if include_non_negative else [])
    points: list[GridPoint] = []
    for model_name in models:
        for g in factors:
            for reg in regs:
                for lr in learning_rates:
                    model = make_recommender(
                        "rsvdn" if model_name == "RSVDN" else "rsvd",
                        n_factors=g,
                        n_epochs=n_epochs,
                        learning_rate=lr,
                        reg=reg,
                        seed=seed,
                    )
                    model.fit(inner.train)
                    points.append(
                        GridPoint(
                            dataset=spec.title,
                            model=model_name,
                            n_factors=g,
                            reg=reg,
                            learning_rate=lr,
                            validation_rmse=_validation_rmse(model, inner.test),
                        )
                    )
    return points


def best_configuration(points: Sequence[GridPoint], model: str) -> GridPoint:
    """The grid point with the lowest validation RMSE for ``model``."""
    candidates = [p for p in points if p.model == model]
    if not candidates:
        raise ValueError(f"no grid points for model {model!r}")
    return min(candidates, key=lambda p: p.validation_rmse)


def run_table5(
    *,
    datasets: Sequence[str] | None = None,
    factors: Sequence[int] = (8, 20, 40),
    regs: Sequence[float] = (0.01, 0.05, 0.1),
    learning_rates: Sequence[float] = (0.01, 0.03),
    scale: float = 1.0,
    seed: SeedLike = 0,
) -> tuple[list[GridPoint], ExperimentTable]:
    """Regenerate Table V: the selected configuration per dataset and model."""
    keys = list(datasets) if datasets is not None else list(EXPERIMENT_DATASETS)
    all_points: list[GridPoint] = []
    table = ExperimentTable(
        title="Table V: RSVD / RSVDN hyper-parameter selection",
        headers=["Dataset", "Model", "eta", "lambda", "g", "RMSE"],
    )
    for key in keys:
        points = run_table5_for_dataset(
            key,
            factors=factors,
            regs=regs,
            learning_rates=learning_rates,
            scale=scale,
            seed=seed,
        )
        all_points.extend(points)
        for model_name in ("RSVD", "RSVDN"):
            best = best_configuration(points, model_name)
            table.add_row(
                [
                    best.dataset,
                    model_name,
                    best.learning_rate,
                    best.reg,
                    best.n_factors,
                    round(best.validation_rmse, 4),
                ]
            )
    return all_points, table
