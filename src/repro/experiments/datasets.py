"""Experiment dataset registry.

Maps the paper's five evaluation datasets (Table II) onto their synthetic
surrogates and the split parameters the paper uses (κ, τ).  Real data files
can be substituted by loading them with :mod:`repro.data.loaders` and passing
the resulting :class:`~repro.data.dataset.RatingDataset` through
:func:`split_for_dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.data.dataset import RatingDataset
from repro.data.split import RatioSplitter, TrainTestSplit
from repro.data.synthetic import DATASET_PROFILES, make_dataset
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class ExperimentDataset:
    """One evaluation dataset of the paper and its surrogate parameters.

    Attributes
    ----------
    key:
        Registry key (``ml100k``, ``ml1m``, ``ml10m``, ``mt200k``, ``netflix``).
    title:
        Name used in the paper's tables.
    profile:
        Synthetic profile name in :data:`repro.data.synthetic.DATASET_PROFILES`.
    train_ratio:
        The paper's per-user split ratio κ.
    min_user_ratings:
        The paper's τ.
    dense:
        Whether the paper treats this dataset as a dense setting (drives the
        choice of accuracy recommender in Section V-B).
    """

    key: str
    title: str
    profile: str
    train_ratio: float
    min_user_ratings: int
    dense: bool


EXPERIMENT_DATASETS: Mapping[str, ExperimentDataset] = {
    "ml100k": ExperimentDataset(
        key="ml100k", title="ML-100K", profile="ml100k",
        train_ratio=0.5, min_user_ratings=20, dense=True,
    ),
    "ml1m": ExperimentDataset(
        key="ml1m", title="ML-1M", profile="ml1m",
        train_ratio=0.5, min_user_ratings=20, dense=True,
    ),
    "ml10m": ExperimentDataset(
        key="ml10m", title="ML-10M", profile="ml10m",
        train_ratio=0.5, min_user_ratings=20, dense=False,
    ),
    "mt200k": ExperimentDataset(
        key="mt200k", title="MT-200K", profile="mt200k",
        train_ratio=0.8, min_user_ratings=5, dense=False,
    ),
    "netflix": ExperimentDataset(
        key="netflix", title="Netflix", profile="netflix",
        train_ratio=0.5, min_user_ratings=10, dense=False,
    ),
}


def load_experiment_split(
    key: str,
    *,
    scale: float = 1.0,
    seed: SeedLike = 0,
    path: str | None = None,
) -> tuple[RatingDataset, TrainTestSplit]:
    """Generate the surrogate dataset for ``key`` and split it per the paper.

    Parameters
    ----------
    key:
        Dataset registry key.  With ``path`` set, an unknown key is allowed
        and splits with the default κ=0.8 — out-of-core stores are not
        limited to the paper's five datasets.
    scale:
        Multiplier on users/items/ratings; benches use small values so every
        experiment fits in CI time budgets.  Ignored when ``path`` is set.
    seed:
        Seed for the train/test split (the dataset itself uses the profile
        seed so the rating data is identical across runs).
    path:
        Out-of-core ingest store directory (:mod:`repro.data.outofcore`).
        When given, the store is opened memmap-backed instead of generating
        a synthetic dataset, and split with ``key``'s κ.
    """
    if path is not None:
        from repro.data.outofcore import load_outofcore

        dataset = load_outofcore(path)
        if key in EXPERIMENT_DATASETS:
            spec = EXPERIMENT_DATASETS[key]
        else:
            spec = ExperimentDataset(
                key=key, title=key, profile=key,
                train_ratio=0.8, min_user_ratings=1, dense=False,
            )
        return dataset, split_for_dataset(dataset, spec, seed=seed)
    if key not in EXPERIMENT_DATASETS:
        raise ConfigurationError(
            f"unknown experiment dataset {key!r}; available: {sorted(EXPERIMENT_DATASETS)}"
        )
    spec = EXPERIMENT_DATASETS[key]
    dataset = make_dataset(spec.profile, scale=scale)
    split = split_for_dataset(dataset, spec, seed=seed)
    return dataset, split


def split_for_dataset(
    dataset: RatingDataset,
    spec: ExperimentDataset,
    *,
    seed: SeedLike = 0,
) -> TrainTestSplit:
    """Split an (already loaded) dataset with the paper's κ for ``spec``."""
    return RatioSplitter(spec.train_ratio, seed=seed).split(dataset)


def profile_config(key: str):
    """Return the synthetic profile configuration behind an experiment dataset."""
    if key not in EXPERIMENT_DATASETS:
        raise ConfigurationError(
            f"unknown experiment dataset {key!r}; available: {sorted(EXPERIMENT_DATASETS)}"
        )
    return DATASET_PROFILES[EXPERIMENT_DATASETS[key].profile]
