"""Table II: dataset statistics.

For every evaluation dataset the paper reports the number of ratings, users,
items, the matrix density ``d%``, the long-tail percentage ``L%`` (share of
rated items that fall in the Pareto long tail of the *train* split), the split
ratio κ and the minimum ratings per user τ.  This module recomputes the same
columns for the surrogate datasets (or any dataset passed in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.dataset import RatingDataset
from repro.data.popularity import PopularityStats
from repro.data.split import TrainTestSplit
from repro.experiments.datasets import EXPERIMENT_DATASETS, load_experiment_split
from repro.experiments.runner import ExperimentTable
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class DatasetStatistics:
    """The Table II row of one dataset."""

    title: str
    n_ratings: int
    n_users: int
    n_items: int
    density_percent: float
    long_tail_percent: float
    train_ratio: float
    min_user_ratings: int


def dataset_statistics(
    dataset: RatingDataset,
    split: TrainTestSplit,
    *,
    title: str,
    train_ratio: float,
    min_user_ratings: int,
) -> DatasetStatistics:
    """Compute the Table II statistics for one dataset and its split."""
    stats = PopularityStats.from_dataset(split.train)
    return DatasetStatistics(
        title=title,
        n_ratings=dataset.n_ratings,
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        density_percent=100.0 * dataset.density,
        long_tail_percent=stats.long_tail_percentage,
        train_ratio=train_ratio,
        min_user_ratings=min_user_ratings,
    )


def run_table2(
    *,
    datasets: Sequence[str] | None = None,
    scale: float = 1.0,
    seed: SeedLike = 0,
) -> ExperimentTable:
    """Regenerate Table II over the surrogate datasets.

    Parameters
    ----------
    datasets:
        Registry keys to include; defaults to all five.
    scale:
        Surrogate dataset scale factor.
    seed:
        Split seed.
    """
    keys = list(datasets) if datasets is not None else list(EXPERIMENT_DATASETS)
    table = ExperimentTable(
        title="Table II: dataset statistics",
        headers=["Dataset", "|D|", "|U|", "|I|", "d%", "L%", "kappa", "tau"],
    )
    for key in keys:
        spec = EXPERIMENT_DATASETS[key]
        dataset, split = load_experiment_split(key, scale=scale, seed=seed)
        stats = dataset_statistics(
            dataset,
            split,
            title=spec.title,
            train_ratio=spec.train_ratio,
            min_user_ratings=spec.min_user_ratings,
        )
        table.add_row(
            [
                stats.title,
                stats.n_ratings,
                stats.n_users,
                stats.n_items,
                round(stats.density_percent, 2),
                round(stats.long_tail_percent, 2),
                stats.train_ratio,
                stats.min_user_ratings,
            ]
        )
    return table
