"""Figure 5: interplay of the preference model, the accuracy recommender and N.

The paper evaluates GANC(ARec, θ, Dyn) on ML-1M with a fixed sample size
(S = 500) while varying

* the accuracy recommender ARec ∈ {RSVD, PSVD100, PSVD10, Pop},
* the preference model θ ∈ {θR, θC, θN, θT, θG} (plus ARec alone as the
  reference), and
* the top-N size N ∈ {5, 10, 15, 20},

and reports F-measure, Stratified Recall, LTAccuracy, Coverage and Gini.  The
headline observations this harness lets you check: the bare ARec has the best
F-measure but the worst coverage/gini, and the informed preference models
(θN, θT, θG) dominate the uninformed ones (θR, θC) on accuracy while retaining
the coverage gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.evaluation.evaluator import Evaluator
from repro.experiments.datasets import load_experiment_split
from repro.experiments.runner import ExperimentTable, build_accuracy_recommender
from repro.metrics.report import MetricReport
from repro.pipeline import Pipeline, ganc_spec
from repro.preferences.base import PreferenceResult
from repro.preferences.generalized import GeneralizedPreference
from repro.preferences.simple import (
    ConstantPreference,
    NormalizedLongTailPreference,
    RandomPreference,
    TfidfPreference,
)
from repro.utils.rng import SeedLike

#: Preference models Figure 5 compares, in display order.
FIGURE5_THETAS = ("thetaN", "thetaT", "thetaG", "thetaR", "thetaC")
#: Accuracy recommenders of the four panel rows.
FIGURE5_ARECS = ("rsvd", "psvd100", "psvd10", "pop")


@dataclass(frozen=True)
class Figure5Cell:
    """Metrics of one (ARec, θ, N) configuration."""

    accuracy_recommender: str
    preference: str
    n: int
    report: MetricReport


def _estimate_thetas(train, seed: SeedLike) -> dict[str, PreferenceResult]:
    return {
        "thetaN": NormalizedLongTailPreference().estimate(train),
        "thetaT": TfidfPreference().estimate(train),
        "thetaG": GeneralizedPreference().estimate(train),
        "thetaR": RandomPreference(seed=seed).estimate(train),
        "thetaC": ConstantPreference(0.5).estimate(train),
    }


def run_figure5(
    *,
    dataset_key: str = "ml1m",
    accuracy_recommenders: Sequence[str] = FIGURE5_ARECS,
    preference_models: Sequence[str] = FIGURE5_THETAS,
    n_values: Sequence[int] = (5, 10, 15, 20),
    sample_size: int = 500,
    scale: float = 1.0,
    seed: SeedLike = 0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> tuple[list[Figure5Cell], ExperimentTable]:
    """Regenerate the Figure 5 panels (as rows of a long-format table)."""
    _, split = load_experiment_split(dataset_key, scale=scale, seed=seed)
    thetas = _estimate_thetas(split.train, seed)
    n_users = split.train.n_users
    sample_size = max(1, min(sample_size, n_users))

    cells: list[Figure5Cell] = []
    table = ExperimentTable(
        title=f"Figure 5: GANC(ARec, theta, Dyn) on {dataset_key} (S={sample_size})",
        headers=[
            "ARec", "theta", "N",
            "F-measure", "StratRecall", "LTAccuracy", "Coverage", "Gini",
        ],
    )

    for arec_name in accuracy_recommenders:
        # One fitted accuracy recommender (and one estimated θ vector per
        # model) is shared across every spec that references it.
        arec = build_accuracy_recommender(arec_name, seed=seed, scale_hint=scale)
        arec.fit(split.train)
        for n in n_values:
            evaluator = Evaluator(
                split, n=int(n), block_size=block_size, n_jobs=n_jobs, backend=backend
            )
            # Reference row: the accuracy recommender on its own.
            reference = evaluator.evaluate_recommender(arec, algorithm=arec_name, fit=False)
            cells.append(
                Figure5Cell(arec_name, "ARec", int(n), reference.report)
            )
            table.add_row(
                [
                    arec_name, "ARec", n,
                    reference.report.f_measure, reference.report.stratified_recall,
                    reference.report.lt_accuracy, reference.report.coverage,
                    reference.report.gini,
                ]
            )
            for theta_name in preference_models:
                spec = ganc_spec(
                    dataset=dataset_key, arec=arec_name, theta=theta_name,
                    coverage="dyn", n=int(n), sample_size=sample_size,
                    optimizer="oslg", scale=scale, seed=seed, block_size=block_size,
                    n_jobs=n_jobs, backend=backend,
                )
                pipeline = Pipeline(
                    spec, recommender=arec, preference=thetas[theta_name]
                ).fit(split)
                run = evaluator.evaluate_recommendations(
                    pipeline.recommend_all(),
                    algorithm=f"GANC({arec_name}, {theta_name}, Dyn)",
                )
                cells.append(Figure5Cell(arec_name, theta_name, int(n), run.report))
                table.add_row(
                    [
                        arec_name, theta_name, n,
                        run.report.f_measure, run.report.stratified_recall,
                        run.report.lt_accuracy, run.report.coverage, run.report.gini,
                    ]
                )
    return cells, table


def informed_vs_uninformed_gap(cells: Sequence[Figure5Cell], *, metric: str = "f_measure") -> float:
    """Average metric gap between informed (θN/θT/θG) and uninformed (θR/θC) variants.

    Positive values mean the informed preference estimates outperform the
    random/constant controls, which is the paper's central Figure 5 claim.
    """
    informed = [c.report.metric(metric) for c in cells if c.preference in ("thetaN", "thetaT", "thetaG")]
    uninformed = [c.report.metric(metric) for c in cells if c.preference in ("thetaR", "thetaC")]
    if not informed or not uninformed:
        return 0.0
    return float(np.mean(informed) - np.mean(uninformed))
