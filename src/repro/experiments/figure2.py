"""Figure 2: histograms of the long-tail novelty preference models.

The paper plots, per dataset, the distribution of θA, θN, θT and θG across
users and observes that θA and θN are skewed toward small values (sparsity and
popularity bias) whereas θT and θG are closer to a normal distribution with a
larger mean and variance.  This module recomputes the histograms and a few
summary statistics that make the skew comparison testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.experiments.datasets import EXPERIMENT_DATASETS, load_experiment_split
from repro.experiments.runner import ExperimentTable
from repro.preferences.generalized import GeneralizedPreference
from repro.preferences.simple import (
    ActivityPreference,
    NormalizedLongTailPreference,
    TfidfPreference,
)
from repro.utils.rng import SeedLike

#: The preference models Figure 2 plots, in display order.
FIGURE2_MODELS = ("thetaA", "thetaN", "thetaT", "thetaG")


@dataclass(frozen=True)
class PreferenceHistogram:
    """Histogram and summary statistics of one preference model on one dataset."""

    dataset: str
    model: str
    bin_edges: np.ndarray
    counts: np.ndarray
    mean: float
    std: float
    skewness: float


def _skewness(values: np.ndarray) -> float:
    centered = values - values.mean()
    std = values.std()
    if std <= 0:
        return 0.0
    return float(np.mean(centered**3) / std**3)


def preference_histograms(
    train: RatingDataset,
    *,
    n_bins: int = 10,
    label: str = "dataset",
) -> dict[str, PreferenceHistogram]:
    """Estimate all four preference models on ``train`` and histogram them."""
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    estimators: Mapping[str, object] = {
        "thetaA": ActivityPreference(),
        "thetaN": NormalizedLongTailPreference(),
        "thetaT": TfidfPreference(),
        "thetaG": GeneralizedPreference(),
    }
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    out: dict[str, PreferenceHistogram] = {}
    for name, estimator in estimators.items():
        theta = estimator.estimate(train).theta  # type: ignore[attr-defined]
        counts, _ = np.histogram(theta, bins=edges)
        out[name] = PreferenceHistogram(
            dataset=label,
            model=name,
            bin_edges=edges,
            counts=counts,
            mean=float(theta.mean()),
            std=float(theta.std()),
            skewness=_skewness(theta),
        )
    return out


def run_figure2(
    *,
    datasets: Sequence[str] | None = None,
    scale: float = 1.0,
    n_bins: int = 10,
    seed: SeedLike = 0,
) -> tuple[dict[str, dict[str, PreferenceHistogram]], ExperimentTable]:
    """Regenerate the Figure 2 histograms for the surrogate datasets."""
    keys = list(datasets) if datasets is not None else list(EXPERIMENT_DATASETS)
    table = ExperimentTable(
        title="Figure 2: preference model distributions (summary statistics)",
        headers=["Dataset", "model", "mean", "std", "skewness"],
    )
    results: dict[str, dict[str, PreferenceHistogram]] = {}
    for key in keys:
        spec = EXPERIMENT_DATASETS[key]
        _, split = load_experiment_split(key, scale=scale, seed=seed)
        histograms = preference_histograms(split.train, n_bins=n_bins, label=spec.title)
        results[key] = histograms
        for model in FIGURE2_MODELS:
            hist = histograms[model]
            table.add_row(
                [spec.title, model, round(hist.mean, 4), round(hist.std, 4), round(hist.skewness, 3)]
            )
    return results, table
