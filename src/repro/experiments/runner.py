"""Shared utilities of the experiment harness.

Provides the result containers every experiment returns (tables and series)
and the rank-aggregation logic Table IV uses to compute per-algorithm average
ranks.  Accuracy recommenders are built through the unified
:mod:`repro.registry`; :func:`build_accuracy_recommender` remains as the
harness-flavored entry point (seed + surrogate rank scaling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.metrics.report import MetricReport
from repro.recommenders.base import Recommender
from repro.recommenders.registry import make_recommender
from repro.utils.rng import SeedLike
from repro.utils.tables import format_table


@dataclass
class ExperimentTable:
    """A titled table of experiment results (one per paper table/figure panel)."""

    title: str
    headers: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, row: Sequence[object]) -> None:
        """Append a row; its length must match the headers."""
        if len(row) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(list(row))

    def to_text(self, *, float_digits: int = 4) -> str:
        """Render the table as fixed-width text."""
        return format_table(self.headers, self.rows, title=self.title, float_digits=float_digits)

    def column(self, name: str) -> list[object]:
        """Extract a column by header name."""
        if name not in self.headers:
            raise ConfigurationError(f"no column named {name!r} in table {self.title!r}")
        idx = list(self.headers).index(name)
        return [row[idx] for row in self.rows]


@dataclass
class SeriesResult:
    """A named series of (x, y) points, the unit behind the paper's figures."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add_point(self, x: float, y: float) -> None:
        """Append one point to the series."""
        self.x.append(float(x))
        self.y.append(float(y))

    def as_rows(self) -> list[list[float]]:
        """Return the series as ``[x, y]`` rows."""
        return [[x, y] for x, y in zip(self.x, self.y)]


# --------------------------------------------------------------------------- #
# Accuracy recommender construction
# --------------------------------------------------------------------------- #
def build_accuracy_recommender(
    name: str,
    *,
    seed: SeedLike = 0,
    scale_hint: float = 1.0,
) -> Recommender:
    """Build an accuracy recommender by the short name the paper uses.

    Thin delegate to the unified component registry: the paper's experiment
    hyper-parameters and the surrogate rank scaling (``scale_hint``) are the
    registry entries' defaults, so this helper is just
    ``make_recommender(name, seed=seed, scale_hint=scale_hint)``.
    """
    return make_recommender(name, seed=seed, scale_hint=scale_hint)


# --------------------------------------------------------------------------- #
# Rank aggregation (Table IV)
# --------------------------------------------------------------------------- #
#: Table IV metric order and orientation (True = higher is better).
TABLE4_METRICS: Mapping[str, bool] = {
    "f_measure": True,
    "stratified_recall": True,
    "lt_accuracy": True,
    "coverage": True,
    "gini": False,
}


def metric_ranks(
    reports: Sequence[MetricReport],
    metric: str,
    *,
    higher_is_better: bool = True,
) -> list[int]:
    """Competition ranks (1 = best) of the reports on one metric."""
    values = np.array([report.metric(metric) for report in reports], dtype=np.float64)
    ordered = -values if higher_is_better else values
    order = np.argsort(ordered, kind="stable")
    ranks = np.empty(len(reports), dtype=np.int64)
    current_rank = 0
    previous = None
    for position, idx in enumerate(order):
        value = ordered[idx]
        if previous is None or value > previous + 1e-12:
            current_rank = position + 1
            previous = value
        ranks[idx] = current_rank
    return [int(r) for r in ranks]


def average_ranks(
    reports: Sequence[MetricReport],
    metrics: Mapping[str, bool] | None = None,
) -> list[float]:
    """Average rank of each report across the Table IV metrics."""
    metrics = metrics or TABLE4_METRICS
    all_ranks = np.zeros((len(reports), len(metrics)), dtype=np.float64)
    for column, (metric, higher_is_better) in enumerate(metrics.items()):
        all_ranks[:, column] = metric_ranks(
            reports, metric, higher_is_better=higher_is_better
        )
    return [float(v) for v in all_ranks.mean(axis=1)]


RecommendationBuilder = Callable[[], Mapping[int, np.ndarray]]
