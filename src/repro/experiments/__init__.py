"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function that executes the experiment at a
configurable scale and returns structured results (rows / series), plus the
shared :mod:`repro.experiments.runner` utilities that format them as the
plain-text tables the paper reports.

| Paper artefact | Module |
|----------------|--------|
| Table II (dataset statistics)            | :mod:`repro.experiments.table2`     |
| Figure 1 (popularity vs activity)        | :mod:`repro.experiments.figure1`    |
| Figure 2 (preference histograms)         | :mod:`repro.experiments.figure2`    |
| Figures 3-4 (OSLG sample-size sweep)     | :mod:`repro.experiments.figure3_4`  |
| Figure 5 (preference models x ARec x N)  | :mod:`repro.experiments.figure5`    |
| Table IV (re-ranking comparison)         | :mod:`repro.experiments.table4`     |
| Figure 6 (accuracy/coverage/novelty)     | :mod:`repro.experiments.figure6`    |
| Table V (RSVD hyper-parameters)          | :mod:`repro.experiments.table5`     |
| Figures 7-8 (ranking protocols)          | :mod:`repro.experiments.figure7_8`  |
| Ablations (OSLG vs exact, ordering)      | :mod:`repro.experiments.ablations`  |
"""

from repro.experiments.datasets import (
    ExperimentDataset,
    EXPERIMENT_DATASETS,
    load_experiment_split,
)
from repro.experiments.runner import ExperimentTable, SeriesResult, build_accuracy_recommender

__all__ = [
    "ExperimentDataset",
    "EXPERIMENT_DATASETS",
    "load_experiment_split",
    "ExperimentTable",
    "SeriesResult",
    "build_accuracy_recommender",
]
