"""Ablation studies on the design choices GANC makes.

Two ablations beyond the paper's published figures (DESIGN.md lists why):

* **OSLG vs exact Locally Greedy** — how much coverage/accuracy the sampling
  heuristic gives up relative to the full sequential pass, and the wall-clock
  ratio between them.
* **User ordering** — the sequential pass sorted by increasing θ (the paper's
  choice) versus arbitrary order and decreasing θ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.evaluation.evaluator import Evaluator
from repro.experiments.datasets import load_experiment_split
from repro.experiments.runner import ExperimentTable, build_accuracy_recommender
from repro.metrics.report import MetricReport
from repro.pipeline import Pipeline, ganc_spec
from repro.preferences.generalized import GeneralizedPreference
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class AblationRow:
    """Metrics and wall-clock time of one ablation configuration."""

    configuration: str
    report: MetricReport
    seconds: float


def run_oslg_vs_greedy(
    *,
    dataset_key: str = "ml100k",
    arec_name: str = "psvd100",
    n: int = 5,
    sample_sizes: Sequence[int] = (50, 100, 250),
    scale: float = 1.0,
    seed: SeedLike = 0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> tuple[list[AblationRow], ExperimentTable]:
    """Compare OSLG at several sample sizes against the exact sequential pass."""
    _, split = load_experiment_split(dataset_key, scale=scale, seed=seed)
    evaluator = Evaluator(split, n=n, block_size=block_size, n_jobs=n_jobs, backend=backend)
    theta = GeneralizedPreference().estimate(split.train)
    arec = build_accuracy_recommender(arec_name, seed=seed, scale_hint=scale)
    arec.fit(split.train)

    rows: list[AblationRow] = []
    table = ExperimentTable(
        title=f"Ablation: OSLG vs exact Locally Greedy on {dataset_key}",
        headers=["Configuration", "F-measure@N", "Coverage@N", "Gini@N", "seconds"],
    )

    def spec_for(sample_size: int, optimizer: str):
        """The ablation's spec with one (sample_size, optimizer) combination."""
        return ganc_spec(
            dataset=dataset_key, arec=arec_name, theta="thetaG", coverage="dyn",
            n=n, sample_size=sample_size, optimizer=optimizer, scale=scale,
            seed=seed, block_size=block_size, n_jobs=n_jobs, backend=backend,
        )

    configurations = [("LocallyGreedy (exact)", spec_for(split.train.n_users, "locally_greedy"))]
    for requested in sample_sizes:
        effective = max(1, min(int(requested), split.train.n_users))
        configurations.append((f"OSLG S={requested}", spec_for(effective, "oslg")))

    for label, spec in configurations:
        pipeline = Pipeline(spec, recommender=arec, preference=theta).fit(split)
        started = time.perf_counter()
        recommendations = pipeline.recommend_all()
        elapsed = time.perf_counter() - started
        run = evaluator.evaluate_recommendations(recommendations, algorithm=label)
        rows.append(AblationRow(configuration=label, report=run.report, seconds=elapsed))
        table.add_row(
            [label, run.report.f_measure, run.report.coverage, run.report.gini, round(elapsed, 3)]
        )
    return rows, table


def run_ordering_ablation(
    *,
    dataset_key: str = "ml100k",
    arec_name: str = "psvd100",
    n: int = 5,
    scale: float = 1.0,
    seed: SeedLike = 0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
) -> tuple[list[AblationRow], ExperimentTable]:
    """Compare increasing / arbitrary / decreasing θ orderings of the sequential pass."""
    _, split = load_experiment_split(dataset_key, scale=scale, seed=seed)
    evaluator = Evaluator(split, n=n, block_size=block_size, n_jobs=n_jobs, backend=backend)
    theta = GeneralizedPreference().estimate(split.train)
    arec = build_accuracy_recommender(arec_name, seed=seed, scale_hint=scale)
    arec.fit(split.train)

    rows: list[AblationRow] = []
    table = ExperimentTable(
        title=f"Ablation: sequential user ordering on {dataset_key}",
        headers=["Ordering", "F-measure@N", "Coverage@N", "Gini@N", "seconds"],
    )
    for ordering in ("increasing", "arbitrary", "decreasing"):
        spec = ganc_spec(
            dataset=dataset_key, arec=arec_name, theta="thetaG", coverage="dyn",
            n=n, sample_size=split.train.n_users, optimizer="locally_greedy",
            theta_order=ordering, scale=scale, seed=seed, block_size=block_size,
            n_jobs=n_jobs, backend=backend,
        )
        pipeline = Pipeline(spec, recommender=arec, preference=theta).fit(split)
        started = time.perf_counter()
        recommendations = pipeline.recommend_all()
        elapsed = time.perf_counter() - started
        run = evaluator.evaluate_recommendations(recommendations, algorithm=f"order={ordering}")
        rows.append(AblationRow(configuration=ordering, report=run.report, seconds=elapsed))
        table.add_row(
            [ordering, run.report.f_measure, run.report.coverage, run.report.gini, round(elapsed, 3)]
        )
    return rows, table
