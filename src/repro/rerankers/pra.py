"""Personalized Ranking Adaptation (PRA) — novelty-based variant.

Re-implementation of the generic re-ranking framework of Jugovac, Jannach &
Lerche (Expert Systems with Applications, 2017), configured as in the paper's
comparison (Section IV-A):

1. **Tendency estimation.**  The user's novelty tendency is estimated from
   item popularity statistics with the mean-and-deviation heuristic: the
   target is the mean (normalized, inverted) popularity of a sample of the
   user's rated items (sample size ``min(|I_u|, 10)``), and the tolerance
   band is one standard deviation around it.
2. **Iterative adaptation.**  Starting from the base model's top-N set, items
   from an exchangeable set ``X_u`` (the next ``|X_u|`` items of the base
   ranking) are swapped into the top-N.  At every step the *optimal swap* is
   applied — the (out-item, in-item) pair that moves the list's average
   novelty closest to the user's target — until the list enters the tolerance
   band or ``max_steps`` swaps have been made.

Unlike GANC, the tendency is derived purely from popularity statistics (it
ignores the rating values and the preferences of other raters), which is the
distinction the paper draws between PRA's novelty model and the θG estimate.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender
from repro.rerankers.base import Reranker
from repro.utils.rng import SeedLike, ensure_rng


class PersonalizedRankingAdaptation(Reranker):
    """PRA with the novelty criterion and the optimal-swap strategy.

    Parameters
    ----------
    base:
        The accuracy recommender providing the initial ranking.
    exchangeable_size:
        ``|X_u|``: how many items beyond the top-N are available for swaps
        (10 or 20 in the paper's comparison).
    max_steps:
        Maximum number of swaps per user (20 in the paper).
    sample_size:
        Upper bound on the number of rated items used for tendency estimation
        (10 in the paper).
    seed:
        Seed for the rated-item sampling step.
    """

    def __init__(
        self,
        base: Recommender,
        *,
        exchangeable_size: int = 10,
        max_steps: int = 20,
        sample_size: int = 10,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__(base)
        if exchangeable_size < 1:
            raise ConfigurationError(
                f"exchangeable_size must be >= 1, got {exchangeable_size}"
            )
        if max_steps < 0:
            raise ConfigurationError(f"max_steps must be >= 0, got {max_steps}")
        if sample_size < 1:
            raise ConfigurationError(f"sample_size must be >= 1, got {sample_size}")
        self.exchangeable_size = int(exchangeable_size)
        self.max_steps = int(max_steps)
        self.sample_size = int(sample_size)
        self._seed = seed
        self._novelty: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._tolerances: np.ndarray | None = None

    @property
    def name(self) -> str:
        """Template string, e.g. ``PRA(RSVD, 10)``."""
        return f"PRA({type(self.base).__name__}, {self.exchangeable_size})"

    # ------------------------------------------------------------------ #
    def _fit_extra(self, train: RatingDataset) -> None:
        rng = ensure_rng(self._seed)
        popularity = train.item_popularity().astype(np.float64)
        max_pop = max(float(popularity.max()), 1.0)
        # Item novelty: 1 for never-rated items, approaching 0 for blockbusters.
        self._novelty = 1.0 - popularity / max_pop

        targets = np.zeros(train.n_users, dtype=np.float64)
        tolerances = np.zeros(train.n_users, dtype=np.float64)
        for user in range(train.n_users):
            rated = train.user_items(user)
            if rated.size == 0:
                targets[user] = 0.0
                tolerances[user] = 0.0
                continue
            size = min(self.sample_size, rated.size)
            sample = rng.choice(rated, size=size, replace=False)
            novelty_values = self._novelty[sample]
            targets[user] = float(novelty_values.mean())
            tolerances[user] = float(novelty_values.std())
        self._targets = targets
        self._tolerances = tolerances

    # ------------------------------------------------------------------ #
    def rerank_user(self, user: int, n: int) -> np.ndarray:
        """Swap items into the user's top-N until its novelty matches the tendency."""
        self._check_fitted()
        assert self._novelty is not None
        assert self._targets is not None and self._tolerances is not None

        scores = self._candidate_scores(user)
        ranked = self._top_k(scores, n + self.exchangeable_size)
        if ranked.size <= n:
            return ranked[:n]

        current = list(ranked[:n])
        pool = list(ranked[n:])
        target = float(self._targets[user])
        tolerance = float(self._tolerances[user])

        for _ in range(self.max_steps):
            current_novelty = float(self._novelty[np.asarray(current)].mean())
            if abs(current_novelty - target) <= tolerance:
                break
            best_swap: tuple[int, int] | None = None
            best_distance = abs(current_novelty - target)
            for out_pos, out_item in enumerate(current):
                for in_pos, in_item in enumerate(pool):
                    new_mean = current_novelty + (
                        self._novelty[in_item] - self._novelty[out_item]
                    ) / n
                    distance = abs(new_mean - target)
                    if distance < best_distance - 1e-12:
                        best_distance = distance
                        best_swap = (out_pos, in_pos)
            if best_swap is None:
                break
            out_pos, in_pos = best_swap
            current[out_pos], pool[in_pos] = pool[in_pos], current[out_pos]

        return np.asarray(current, dtype=np.int64)
