"""Ranking-Based Techniques (RBT) for aggregate diversity.

Re-implementation of the re-ranking approach of Adomavicius & Kwon (TKDE
2012), as configured in the paper's comparison (Section IV-A):

* the base model predicts a rating for every unseen item;
* items whose predicted rating reaches a ranking threshold ``TR`` (4.5 in the
  paper, with ``Tmax = 5``) form a *re-rankable head*; within that head items
  are re-ordered by an alternative criterion —

  - **Pop criterion**: ascending train popularity, so less popular items move
    to the front,
  - **Avg criterion**: ascending average train rating, so items that the
    standard ranking would rarely surface move to the front;

* items below the threshold keep the standard predicted-rating order and fill
  the remaining positions;
* ``TH`` is a popularity floor — items with fewer than ``TH`` train ratings
  are never promoted by the alternative criterion (quality control on the
  re-ranked head).

The net effect: accuracy degrades gracefully (only confidently good items are
re-ranked) while aggregate diversity/coverage improves.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender
from repro.rerankers.base import Reranker


class RankingBasedTechnique(Reranker):
    """RBT re-ranking with the Pop or Avg criterion.

    Parameters
    ----------
    base:
        Rating-prediction recommender (RSVD in the paper's comparison).
    criterion:
        ``"pop"`` or ``"avg"``.
    ranking_threshold:
        ``TR``: minimum predicted rating for an item to be re-ranked.
    max_rating:
        ``Tmax``: the rating-scale ceiling (used to sanity-check ``TR``).
    popularity_floor:
        ``TH``: minimum number of train ratings an item needs to be eligible
        for promotion by the alternative criterion.
    """

    def __init__(
        self,
        base: Recommender,
        *,
        criterion: str = "pop",
        ranking_threshold: float = 4.5,
        max_rating: float = 5.0,
        popularity_floor: int = 1,
    ) -> None:
        super().__init__(base)
        criterion = criterion.strip().lower()
        if criterion not in ("pop", "avg"):
            raise ConfigurationError(
                f"criterion must be 'pop' or 'avg', got {criterion!r}"
            )
        if ranking_threshold > max_rating:
            raise ConfigurationError(
                f"ranking_threshold ({ranking_threshold}) cannot exceed max_rating ({max_rating})"
            )
        if popularity_floor < 0:
            raise ConfigurationError(
                f"popularity_floor must be non-negative, got {popularity_floor}"
            )
        self.criterion = criterion
        self.ranking_threshold = float(ranking_threshold)
        self.max_rating = float(max_rating)
        self.popularity_floor = int(popularity_floor)
        self._popularity: np.ndarray | None = None
        self._avg_rating: np.ndarray | None = None

    def _fit_extra(self, train: RatingDataset) -> None:
        popularity = train.item_popularity().astype(np.float64)
        sums = np.bincount(train.item_indices, weights=train.ratings, minlength=train.n_items)
        averages = np.zeros(train.n_items, dtype=np.float64)
        rated = popularity > 0
        averages[rated] = sums[rated] / popularity[rated]
        self._popularity = popularity
        self._avg_rating = averages

    @property
    def name(self) -> str:
        """Template string used in reports, e.g. ``RBT(RSVD, Pop)``."""
        return f"RBT({type(self.base).__name__}, {self.criterion.capitalize()})"

    def rerank_user(self, user: int, n: int) -> np.ndarray:
        """Re-rank the user's candidates: promoted head first, standard tail after."""
        self._check_fitted()
        assert self._popularity is not None and self._avg_rating is not None
        scores = self._candidate_scores(user)
        standard_order = self._top_k(scores, np.isfinite(scores).sum())
        if standard_order.size == 0:
            return standard_order

        predicted = scores[standard_order]
        eligible = (
            (predicted >= self.ranking_threshold)
            & (self._popularity[standard_order] >= self.popularity_floor)
        )
        head = standard_order[eligible]
        tail = standard_order[~eligible]

        if head.size:
            if self.criterion == "pop":
                criterion_values = self._popularity[head]
            else:
                criterion_values = self._avg_rating[head]
            head = head[np.argsort(criterion_values, kind="stable")]

        reordered = np.concatenate([head, tail]) if tail.size else head
        return reordered[:n].astype(np.int64)
