"""Re-ranking baselines the paper compares GANC against (Section IV-A).

* :class:`~repro.rerankers.rbt.RankingBasedTechnique` — RBT (Adomavicius &
  Kwon, TKDE 2012): re-rank the highly predicted head of a rating-prediction
  model by item popularity (Pop criterion) or item average rating (Avg
  criterion) to improve aggregate diversity.
* :class:`~repro.rerankers.resource_allocation.ResourceAllocation5D` — the 5D
  resource-allocation re-ranker (Ho, Chiang, Hsu, WSDM 2014) with its
  accuracy-filtering (A) and rank-by-rankings (RR) variants.
* :class:`~repro.rerankers.pra.PersonalizedRankingAdaptation` — PRA (Jugovac,
  Jannach, Lerche, 2017): greedy item swaps that adapt each user's top-N set
  toward their estimated novelty tendency.
"""

from repro.rerankers.base import Reranker
from repro.rerankers.rbt import RankingBasedTechnique
from repro.rerankers.resource_allocation import ResourceAllocation5D
from repro.rerankers.pra import PersonalizedRankingAdaptation
from repro.rerankers.registry import make_reranker, RERANKER_REGISTRY

__all__ = [
    "Reranker",
    "RankingBasedTechnique",
    "ResourceAllocation5D",
    "PersonalizedRankingAdaptation",
    "make_reranker",
    "RERANKER_REGISTRY",
]
