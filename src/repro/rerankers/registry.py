"""Re-ranker registrations in the unified component registry.

Re-rankers wrap a fitted accuracy recommender (their ``base``), so creation
looks like ``create("reranker", "pra", base=model, exchangeable_size=10)``.
The names follow the paper's Table IV labels.
"""

from __future__ import annotations

from typing import Mapping

from repro.registry import create, legacy_view, register
from repro.rerankers.base import Reranker
from repro.rerankers.pra import PersonalizedRankingAdaptation
from repro.rerankers.rbt import RankingBasedTechnique
from repro.rerankers.resource_allocation import ResourceAllocation5D

register("reranker", "rbt")(RankingBasedTechnique)
register("reranker", "5d", aliases=("resource_allocation",))(ResourceAllocation5D)
register("reranker", "pra")(PersonalizedRankingAdaptation)


def make_reranker(name: str, **kwargs: object) -> Reranker:
    """Instantiate a re-ranker from its (case-insensitive) registry name.

    The ``base`` accuracy recommender must be supplied as a keyword argument;
    unknown hyper-parameters raise :class:`ConfigurationError`.
    """
    return create("reranker", name, **kwargs)


#: Name → factory view of the registered re-rankers.
RERANKER_REGISTRY: Mapping[str, object] = legacy_view("reranker")
