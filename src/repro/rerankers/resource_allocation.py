"""Resource-allocation ("5D") re-ranking for mining worth-recommending long-tail items.

Re-implementation of the approach of Ho, Chiang & Hsu (WSDM 2014) in the
configuration the paper compares against (Section IV-A).  The original method
works in two phases and scores every user-item pair along five dimensions;
since the exact formulas are not restated in the GANC paper, this
implementation follows the published description of the two phases and of the
five dimensions, and reproduces the behaviour the comparison reports: plain
``5D`` is an aggressive long-tail promoter (highest LTAccuracy, near-zero
F-measure), while the ``A`` (accuracy-filtering) and ``RR`` (rank-by-rankings)
variants restore part of the accuracy at the cost of novelty.

Phase 1 — resource allocation to items: every item receives resources
proportional to the ratings it collected in train, so well-liked items carry
more resources to redistribute.

Phase 2 — distribution to user-item pairs: each item spreads its resources
over the users most likely to appreciate it (relative preference from the base
model's predicted scores), restricted to the ``k`` strongest pairs overall
(``k = 3·|I|`` in the paper's configuration, exponent ``q = 1``).

Scoring — each candidate user-item pair gets five dimension scores in [0, 1]:
accuracy (base model score), balance (how close the item's popularity is to
the user's typical item popularity), coverage (inverse recommendation
popularity), quality (item average rating), and long-tail quantity (whether
the item is a long-tail item).  The plain variant averages the five
dimensions; the RR variant aggregates per-dimension *ranks* instead
("rank by rankings"); the A variant additionally filters candidates whose
accuracy dimension is below the user's median candidate score.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import RatingDataset
from repro.data.popularity import PopularityStats
from repro.exceptions import ConfigurationError
from repro.recommenders.base import Recommender
from repro.rerankers.base import Reranker
from repro.utils.topn import top_n_indices
from repro.utils.normalization import min_max_normalize


class ResourceAllocation5D(Reranker):
    """5D resource-allocation re-ranker with optional A / RR variants.

    Parameters
    ----------
    base:
        Rating-prediction recommender whose scores provide the accuracy
        dimension and the relative preferences of phase 2.
    accuracy_filtering:
        Enable the ``A`` variant: drop candidates scoring below the user's
        median predicted score before the 5D ranking.
    rank_by_rankings:
        Enable the ``RR`` variant: aggregate per-dimension ranks instead of
        averaging the raw dimension scores.
    resource_multiplier:
        The paper's ``k`` expressed as a multiple of ``|I|`` (3 by default):
        how many user-item pairs receive resources in phase 2.
    preference_exponent:
        The paper's ``q`` (1 by default): exponent applied to relative
        preferences when distributing resources.
    """

    def __init__(
        self,
        base: Recommender,
        *,
        accuracy_filtering: bool = False,
        rank_by_rankings: bool = False,
        resource_multiplier: float = 3.0,
        preference_exponent: float = 1.0,
    ) -> None:
        super().__init__(base)
        if resource_multiplier <= 0:
            raise ConfigurationError(
                f"resource_multiplier must be positive, got {resource_multiplier}"
            )
        if preference_exponent <= 0:
            raise ConfigurationError(
                f"preference_exponent must be positive, got {preference_exponent}"
            )
        self.accuracy_filtering = bool(accuracy_filtering)
        self.rank_by_rankings = bool(rank_by_rankings)
        self.resource_multiplier = float(resource_multiplier)
        self.preference_exponent = float(preference_exponent)

        self._stats: PopularityStats | None = None
        self._item_resources: np.ndarray | None = None
        self._avg_rating: np.ndarray | None = None
        self._user_mean_popularity: np.ndarray | None = None

    @property
    def name(self) -> str:
        """Template string, e.g. ``5D(RSVD, A, RR)``."""
        flags = []
        if self.accuracy_filtering:
            flags.append("A")
        if self.rank_by_rankings:
            flags.append("RR")
        suffix = (", " + ", ".join(flags)) if flags else ""
        return f"5D({type(self.base).__name__}{suffix})"

    # ------------------------------------------------------------------ #
    def _fit_extra(self, train: RatingDataset) -> None:
        self._stats = PopularityStats.from_dataset(train)
        popularity = self._stats.popularity.astype(np.float64)

        # Phase 1: allocate resources to items according to received ratings.
        rating_mass = np.bincount(
            train.item_indices, weights=train.ratings, minlength=train.n_items
        )
        self._item_resources = min_max_normalize(rating_mass)

        sums = rating_mass
        averages = np.zeros(train.n_items, dtype=np.float64)
        rated = popularity > 0
        averages[rated] = sums[rated] / popularity[rated]
        self._avg_rating = averages

        # Per-user mean popularity of rated items (for the balance dimension).
        user_totals = np.bincount(train.user_indices, minlength=train.n_users).astype(float)
        user_pop_sums = np.bincount(
            train.user_indices,
            weights=popularity[train.item_indices],
            minlength=train.n_users,
        )
        means = np.zeros(train.n_users, dtype=np.float64)
        has = user_totals > 0
        means[has] = user_pop_sums[has] / user_totals[has]
        self._user_mean_popularity = means

    # ------------------------------------------------------------------ #
    def _dimension_scores(self, user: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (candidate item indices, 5 x n_candidates dimension matrix)."""
        assert self._stats is not None
        assert self._item_resources is not None
        assert self._avg_rating is not None
        assert self._user_mean_popularity is not None

        raw_scores = self._candidate_scores(user)
        candidates = np.flatnonzero(np.isfinite(raw_scores))
        if candidates.size == 0:
            return candidates, np.zeros((5, 0))
        scores = raw_scores[candidates]

        popularity = self._stats.popularity[candidates].astype(np.float64)
        max_pop = max(float(self._stats.popularity.max()), 1.0)

        # Phase 2: relative preference of the user for each candidate, used to
        # weight the item resources it may receive.
        preference = min_max_normalize(scores) ** self.preference_exponent
        budget = int(min(self.resource_multiplier * self._stats.n_items, candidates.size))
        receives_resources = np.zeros(candidates.size, dtype=bool)
        if budget > 0:
            strongest = np.argsort(-(preference * (1.0 + self._item_resources[candidates])))[:budget]
            receives_resources[strongest] = True

        accuracy_dim = min_max_normalize(scores)
        balance_dim = 1.0 - np.abs(popularity - self._user_mean_popularity[user]) / max_pop
        coverage_dim = 1.0 / np.sqrt(popularity + 1.0)
        quality_dim = min_max_normalize(self._avg_rating[candidates])
        long_tail_dim = self._stats.long_tail_mask[candidates].astype(np.float64)

        dims = np.vstack([accuracy_dim, balance_dim, coverage_dim, quality_dim, long_tail_dim])
        # Candidates outside the resource budget cannot be promoted beyond
        # their accuracy dimension (their beyond-accuracy dimensions are zeroed).
        dims[1:, ~receives_resources] = 0.0
        return candidates, dims

    def rerank_user(self, user: int, n: int) -> np.ndarray:
        """Rank the user's candidates by the aggregated 5D score."""
        self._check_fitted()
        candidates, dims = self._dimension_scores(user)
        if candidates.size == 0:
            return candidates
        accuracy_dim = dims[0]

        if self.accuracy_filtering:
            threshold = float(np.median(accuracy_dim))
            keep = accuracy_dim >= threshold
            if keep.sum() >= n:
                candidates = candidates[keep]
                dims = dims[:, keep]

        if self.rank_by_rankings:
            # Rank-by-rankings: an item's aggregate score is the mean of its
            # (descending) ranks across the five dimensions; lower is better.
            ranks = np.zeros_like(dims)
            for d in range(dims.shape[0]):
                order = np.argsort(-dims[d], kind="stable")
                ranks[d, order] = np.arange(order.size)
            aggregate = -ranks.mean(axis=0)
        else:
            aggregate = dims.mean(axis=0)

        ordered = top_n_indices(aggregate, n)
        return candidates[ordered].astype(np.int64)
