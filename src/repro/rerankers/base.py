"""Common interface of re-ranking baselines.

A re-ranker post-processes a fitted accuracy recommender: it never learns new
rating predictions, it only reorders (or substitutes) candidates to improve
beyond-accuracy objectives.  The interface mirrors the recommenders' API so
both kinds of models can be evaluated by the same harness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError, NotFittedError
from repro.recommenders.base import FittedTopN, Recommender
from repro.registry import ParamsMixin
from repro.utils.topn import top_n_indices


class Reranker(ParamsMixin, ABC):
    """Base class of all re-ranking baselines.

    Parameters
    ----------
    base:
        The accuracy recommender whose predictions are re-ranked.
    """

    def __init__(self, base: Recommender) -> None:
        self.base = base
        self._train: RatingDataset | None = None

    def fit(self, train: RatingDataset) -> "Reranker":
        """Fit the base recommender (if necessary) and any re-ranker state."""
        if not self.base.is_fitted or self.base.train_data is not train:
            self.base.fit(train)
        self._train = train
        self._fit_extra(train)
        return self

    def _fit_extra(self, train: RatingDataset) -> None:
        """Hook for subclasses that precompute statistics at fit time."""
        del train

    @property
    def train_data(self) -> RatingDataset:
        """Train dataset the re-ranker was fitted on."""
        self._check_fitted()
        assert self._train is not None
        return self._train

    def _check_fitted(self) -> None:
        if self._train is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before it can recommend"
            )

    # ------------------------------------------------------------------ #
    @abstractmethod
    def rerank_user(self, user: int, n: int) -> np.ndarray:
        """Return the re-ranked top-``n`` items of one user."""

    def recommend_all(self, n: int) -> FittedTopN:
        """Re-rank every user and return the collection."""
        self._check_fitted()
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        n_users = self.train_data.n_users
        out = np.full((n_users, n), -1, dtype=np.int64)
        for user in range(n_users):
            items = self.rerank_user(user, n)
            out[user, : min(items.size, n)] = items[:n]
        return FittedTopN(items=out)

    # ------------------------------------------------------------------ #
    def _candidate_scores(self, user: int) -> np.ndarray:
        """Base scores with the user's train items masked out."""
        scores = self.base.score_all_items(user).astype(np.float64, copy=True)
        seen = self.train_data.user_items(user)
        if seen.size:
            scores[seen] = -np.inf
        return scores

    @staticmethod
    def _top_k(scores: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` largest finite scores, best first."""
        return top_n_indices(scores, k)
