"""Incremental assignment state behind the dynamic coverage recommender.

The GANC sequential optimizers assign one user's top-N set at a time; after
every assignment only the N just-assigned items' counts change, yet the
historical implementation re-derived the full coverage score vector
``c(i) = 1 / sqrt(f^A_i + 1)`` over *all* items per user.  This module keeps
the counts and the derived score vector in lockstep instead:

* :class:`CoverageState` maintains ``(counts, scores)`` with an O(N) delta
  per :meth:`~CoverageState.apply` call — each touched entry is recomputed
  with exactly the same ``1 / sqrt(f + 1)`` expression a full recompute would
  use, so the maintained vector is bit-for-bit identical to one derived from
  scratch at every step.
* :class:`DeltaSnapshots` records the per-step coverage snapshots OSLG needs
  (Algorithm 1, line 9) as the assignment deltas themselves — O(S·N) memory
  instead of the historical dense O(S·|I|) array — and reconstructs either
  the dense snapshot matrix or the score rows of arbitrary snapshot
  positions on demand, again bit-identically.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError


def _validate_counts(counts: np.ndarray) -> np.ndarray:
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise ConfigurationError(
            f"assignment counts must be a 1-D vector, got shape {counts.shape}"
        )
    if counts.size and counts.min() < 0:
        raise ConfigurationError("assignment frequencies cannot be negative")
    return counts


class CoverageState:
    """Assignment counts and their coverage scores, updated by O(N) deltas.

    Parameters
    ----------
    counts:
        Initial per-item assignment counts ``f^A`` (non-negative).  The score
        vector ``1 / sqrt(f + 1)`` is derived once here; afterwards only the
        entries touched by :meth:`apply` are recomputed.
    """

    __slots__ = ("_counts", "_scores")

    def __init__(self, counts: np.ndarray) -> None:
        self._counts = _validate_counts(counts).copy()
        self._scores = 1.0 / np.sqrt(self._counts + 1.0)

    @classmethod
    def zeros(cls, n_items: int) -> "CoverageState":
        """Fresh state: no assignments yet, every score at its maximum of 1."""
        if n_items < 0:
            raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
        return cls(np.zeros(int(n_items), dtype=np.float64))

    @property
    def n_items(self) -> int:
        """Size of the item universe."""
        return self._counts.size

    @property
    def counts(self) -> np.ndarray:
        """Current assignment counts ``f^A`` (read-only view)."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    @property
    def scores(self) -> np.ndarray:
        """Current coverage scores ``1 / sqrt(f^A + 1)`` (read-only view).

        The view aliases the live state: it reflects every subsequent
        :meth:`apply` without re-fetching, which is what lets the sequential
        optimizers blend against it without per-user copies.
        """
        view = self._scores.view()
        view.flags.writeable = False
        return view

    def apply(self, items: np.ndarray) -> None:
        """Record one assignment: bump ``items``' counts, refresh their scores.

        Cost is O(N) in the number of assigned items — repeated items are
        counted once per occurrence, exactly like ``np.add.at``.
        """
        items = np.asarray(items, dtype=np.int64)
        if not items.size:
            return
        np.add.at(self._counts, items, 1.0)
        # Counts are fully incremented above, so recomputing a duplicated
        # index twice writes the same value twice — no dedup needed.
        self._scores[items] = 1.0 / np.sqrt(self._counts[items] + 1.0)

    def apply_batch(self, batches: Iterable[np.ndarray]) -> None:
        """Record many assignments at once; bit-identical to looped :meth:`apply`.

        ``batches`` is a sequence of per-step assigned item arrays (for the
        traffic simulator: the consumed items of every event in a window).
        All counts are bumped first — each occurrence adds exactly ``1.0``,
        and float64 addition of small integers is exact, so the final counts
        equal the looped result bit for bit — then each touched score entry
        is recomputed once from its final count, which is also exactly the
        value the last looped ``apply`` would have written.
        """
        arrays = [np.asarray(items, dtype=np.int64) for items in batches]
        arrays = [items for items in arrays if items.size]
        if not arrays:
            return
        touched = np.concatenate(arrays)
        np.add.at(self._counts, touched, 1.0)
        self._scores[touched] = 1.0 / np.sqrt(self._counts[touched] + 1.0)

    def revert(self, items: np.ndarray) -> None:
        """Undo one :meth:`apply`: drop ``items``' counts, refresh their scores.

        The inverse the simulator's windowed what-if checks need: reverting
        exactly the items a previous ``apply`` recorded restores counts *and*
        scores bit-identically (each occurrence subtracts the exact ``1.0``
        it added, and the score is recomputed with the same expression).
        Reverting items that were never applied would drive a count negative;
        that is rejected with the state left unchanged.
        """
        items = np.asarray(items, dtype=np.int64)
        if not items.size:
            return
        np.subtract.at(self._counts, items, 1.0)
        if self._counts[items].min() < 0:
            np.add.at(self._counts, items, 1.0)  # restore before failing
            raise ConfigurationError(
                "revert would drive an assignment count negative; the items "
                "do not match a previously applied assignment"
            )
        self._scores[items] = 1.0 / np.sqrt(self._counts[items] + 1.0)

    def reset(self) -> None:
        """Clear all counts; every score returns to ``1 / sqrt(1) = 1``."""
        self._counts.fill(0.0)
        self._scores.fill(1.0)


class DeltaSnapshots:
    """Per-step coverage snapshots stored as assignment deltas.

    The historical OSLG implementation materialized a dense
    ``(S, n_items)`` float64 snapshot matrix — one full copy of the
    frequency vector per sampled user.  Each snapshot differs from its
    predecessor by at most N counts, so this log stores the base counts once
    plus the per-step assigned item arrays, and reconstructs

    * :meth:`dense` — the exact historical snapshot matrix, and
    * :meth:`scores_at` — the coverage *score* rows of arbitrary snapshot
      positions (what the snapshot-assignment phase actually consumes)

    by replaying the deltas through a :class:`CoverageState`.  Every
    reconstructed value is computed with the same expressions as the dense
    path, so both forms are bit-identical to the pre-refactor arrays.  A log
    pickles at O(|I| + S·N), which is what the process-backend snapshot
    tasks ship to workers.
    """

    __slots__ = ("_base", "_deltas")

    def __init__(self, base_counts: np.ndarray, deltas: Iterable[np.ndarray] = ()) -> None:
        self._base = _validate_counts(base_counts).copy()
        self._deltas: list[np.ndarray] = [
            np.asarray(items, dtype=np.int64).copy() for items in deltas
        ]

    @property
    def n_items(self) -> int:
        """Size of the item universe."""
        return self._base.size

    @property
    def n_steps(self) -> int:
        """Number of recorded snapshots."""
        return len(self._deltas)

    def __len__(self) -> int:
        return len(self._deltas)

    @property
    def base_counts(self) -> np.ndarray:
        """Counts before the first recorded step (read-only view)."""
        view = self._base.view()
        view.flags.writeable = False
        return view

    def record(self, items: np.ndarray) -> None:
        """Append one step's assigned items (the snapshot delta)."""
        items = np.asarray(items, dtype=np.int64)
        if items.size and (items.min() < 0 or items.max() >= self.n_items):
            raise ConfigurationError(
                f"assigned item indices must lie in [0, {self.n_items}), "
                f"got range [{items.min()}, {items.max()}]"
            )
        self._deltas.append(items.copy())

    def _check_positions(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (positions.min() < 0 or positions.max() >= self.n_steps):
            raise ConfigurationError(
                f"snapshot positions must lie in [0, {self.n_steps}), "
                f"got range [{positions.min()}, {positions.max()}]"
            )
        return positions

    def counts_at(self, position: int) -> np.ndarray:
        """Dense frequency vector after step ``position`` (a fresh array)."""
        position = int(self._check_positions(np.asarray([position]))[0])
        counts = self._base.copy()
        for items in self._deltas[: position + 1]:
            np.add.at(counts, items, 1.0)
        return counts

    def dense(self) -> np.ndarray:
        """The historical ``(n_steps, n_items)`` dense snapshot matrix."""
        out = np.empty((self.n_steps, self.n_items), dtype=np.float64)
        counts = self._base.copy()
        for step, items in enumerate(self._deltas):
            np.add.at(counts, items, 1.0)
            out[step] = counts
        return out

    def scores_at(self, positions: np.ndarray) -> np.ndarray:
        """Coverage score rows of the requested snapshot positions.

        Equivalent to ``DynamicCoverage.snapshot_scores(self.dense()[positions])``
        but replays only up to the largest requested position and derives each
        unique row once, at O(max_position · N) delta work plus one O(n_items)
        score row per distinct position.
        """
        positions = self._check_positions(positions)
        if positions.size == 0:
            return np.empty((0, self.n_items), dtype=np.float64)
        unique, inverse = np.unique(positions, return_inverse=True)
        rows = np.empty((unique.size, self.n_items), dtype=np.float64)
        state = CoverageState(self._base)
        cursor = 0
        for step in range(int(unique[-1]) + 1):
            state.apply(self._deltas[step])
            if step == unique[cursor]:
                rows[cursor] = state.scores
                cursor += 1
        return rows[inverse]
