"""Coverage recommenders (Section III-B of the paper).

A coverage recommender supplies the coverage score ``c(i) ∈ [0, 1]`` of every
item, rewarding recommendations that spread across the item space:

* :class:`~repro.coverage.random.RandomCoverage` — ``c(i) ~ Uniform(0, 1)``,
* :class:`~repro.coverage.static.StaticCoverage` — a monotone decreasing
  function of the item's *train* popularity, ``c(i) = 1 / sqrt(f^R_i + 1)``,
* :class:`~repro.coverage.dynamic.DynamicCoverage` — the same decreasing
  function applied to the item's frequency in the *recommendations assigned so
  far*, giving a diminishing-returns (submodular) coverage gain.

The dynamic recommender's assignment bookkeeping lives in
:mod:`repro.coverage.state`: :class:`~repro.coverage.state.CoverageState`
keeps counts and scores in lockstep with O(N) delta updates, and
:class:`~repro.coverage.state.DeltaSnapshots` records OSLG's per-step
snapshots compactly.
"""

from repro.coverage.base import CoverageRecommender
from repro.coverage.random import RandomCoverage
from repro.coverage.static import StaticCoverage
from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.state import CoverageState, DeltaSnapshots
from repro.coverage.registry import make_coverage, COVERAGE_REGISTRY

__all__ = [
    "CoverageRecommender",
    "RandomCoverage",
    "StaticCoverage",
    "DynamicCoverage",
    "CoverageState",
    "DeltaSnapshots",
    "make_coverage",
    "COVERAGE_REGISTRY",
]
