"""Abstract interface of coverage recommenders."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.dataset import RatingDataset
from repro.exceptions import NotFittedError
from repro.registry import ParamsMixin


class CoverageRecommender(ParamsMixin, ABC):
    """Supplies per-item coverage scores ``c(i) ∈ [0, 1]``.

    Stateless recommenders (Rand, Stat) return the same scores for every user;
    the dynamic recommender updates its internal assignment counts as top-N
    sets are handed out, which is what makes the GANC objective submodular.
    """

    #: short name used in the GANC template string and the registry
    name: str = "coverage"

    def __init__(self) -> None:
        self._n_items: int | None = None

    @abstractmethod
    def fit(self, train: RatingDataset) -> "CoverageRecommender":
        """Prepare the recommender from the train data and return ``self``."""

    @abstractmethod
    def scores(self, user: int) -> np.ndarray:
        """Coverage scores of all items for ``user`` (shape ``(n_items,)``)."""

    def scores_matrix(self, users: np.ndarray) -> np.ndarray:
        """Coverage score rows for a block of users, ``(len(users), n_items)``.

        When :attr:`user_independent` is set the block is a read-only
        broadcast view of one shared :meth:`scores` row — it must not be
        mutated in place; per-user recommenders get stacked rows instead.
        Subclasses may override with an even cheaper implementation (the
        stock recommenders broadcast their internal row without the copy
        ``scores`` makes).
        """
        users = np.asarray(users, dtype=np.int64)
        if users.size == 0:
            return np.empty((0, self.n_items), dtype=np.float64)
        if self.user_independent:
            row = np.asarray(self.scores(int(users[0])), dtype=np.float64)
            return np.broadcast_to(row, (users.size, self.n_items))
        return np.stack([np.asarray(self.scores(int(u)), dtype=np.float64) for u in users])

    @property
    def is_dynamic(self) -> bool:
        """Whether scores depend on the recommendations assigned so far."""
        return False

    @property
    def user_independent(self) -> bool:
        """Whether :meth:`scores` ignores the user it is asked about.

        User-independent recommenders (Stat, Dyn) serve one shared score row
        to every user, so batch paths may broadcast a single row instead of
        stacking copies, and the incremental sequential optimizers may blend
        against one live vector.  Per-user recommenders (Rand) return False.
        """
        return False

    def update(self, items: np.ndarray) -> None:
        """Notify the recommender that ``items`` were just recommended.

        Stateless recommenders ignore the notification.
        """
        del items

    def reset(self) -> None:
        """Reset any assignment-dependent state (no-op for stateless models)."""

    @property
    def n_items(self) -> int:
        """Size of the item universe the recommender was fitted on."""
        if self._n_items is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before it can be used"
            )
        return self._n_items

    def _mark_fitted(self, train: RatingDataset) -> None:
        self._n_items = train.n_items
