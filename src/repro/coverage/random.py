"""Random coverage recommender: ``c(i) ~ Uniform(0, 1)``.

Recommending from this component alone yields maximal item-space coverage but
no accuracy; inside GANC it acts as an unbiased exploration term.
"""

from __future__ import annotations

import numpy as np

from repro.coverage.base import CoverageRecommender
from repro.data.dataset import RatingDataset
from repro.utils.rng import SeedLike, ensure_rng


class RandomCoverage(CoverageRecommender):
    """Per-user i.i.d. uniform coverage scores (deterministic per seed)."""

    name = "Rand"

    def __init__(self, *, seed: SeedLike = None) -> None:
        super().__init__()
        self._seed = seed
        self._base_seed: int | None = None

    def fit(self, train: RatingDataset) -> "RandomCoverage":
        """Fix the per-user random streams."""
        rng = ensure_rng(self._seed)
        self._base_seed = int(rng.integers(0, 2**31 - 1))
        self._mark_fitted(train)
        return self

    def scores(self, user: int) -> np.ndarray:
        """Uniform random scores for every item, reproducible per user."""
        assert self._base_seed is not None, "fit must be called first"
        user_rng = np.random.default_rng(self._base_seed + int(user))
        return user_rng.random(self.n_items)
