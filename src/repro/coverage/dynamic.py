"""Dynamic coverage recommender with diminishing returns (Section III-B).

``c(i) = 1 / sqrt(f^A_i + 1)`` where ``f^A_i`` counts how often item ``i``
appears in the recommendations assigned *so far*.  The first time an item is
recommended its gain is 1; every further recommendation of the same item is
worth less.  This diminishing-returns property makes the aggregate GANC
objective submodular across users (Theorem A.1 of the paper) and is what lets
the framework spread long-tail items across the user base instead of pushing
the same few unpopular items to everyone.

The counts *and* the derived score vector live in an incrementally maintained
:class:`~repro.coverage.state.CoverageState`: recording an assignment touches
only the N assigned items (an O(N) delta), so the sequential GANC optimizers
never pay an O(|I|) score recompute per user.  The maintained vector is
bit-identical to a from-scratch ``1 / sqrt(f + 1)`` at every step.
"""

from __future__ import annotations

import numpy as np

from repro.coverage.base import CoverageRecommender
from repro.coverage.state import CoverageState
from repro.data.dataset import RatingDataset
from repro.exceptions import ConfigurationError


class DynamicCoverage(CoverageRecommender):
    """Stateful coverage scores based on current assignment frequencies."""

    name = "Dyn"

    def __init__(self) -> None:
        super().__init__()
        self._state: CoverageState | None = None

    @property
    def is_dynamic(self) -> bool:
        """Dynamic coverage depends on the assignments made so far."""
        return True

    @property
    def user_independent(self) -> bool:
        """Scores depend on the assignment state, never on the user asked."""
        return True

    def fit(self, train: RatingDataset) -> "DynamicCoverage":
        """Initialize the assignment frequency vector ``f`` to zero."""
        self._state = CoverageState.zeros(train.n_items)
        self._mark_fitted(train)
        return self

    # ------------------------------------------------------------------ #
    # Assignment state
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> CoverageState:
        """The live incremental ``(counts, scores)`` state."""
        assert self._state is not None, "fit must be called first"
        return self._state

    @property
    def frequencies(self) -> np.ndarray:
        """Current assignment counts ``f^A`` (read-only copy)."""
        assert self._state is not None, "fit must be called first"
        return self._state.counts.copy()

    def set_frequencies(self, frequencies: np.ndarray) -> None:
        """Overwrite the assignment counts (used by OSLG snapshots)."""
        arr = np.asarray(frequencies, dtype=np.float64)
        if arr.shape != (self.n_items,):
            raise ConfigurationError(
                f"frequency vector must have shape ({self.n_items},), got {arr.shape}"
            )
        self._state = CoverageState(arr)

    def update(self, items: np.ndarray) -> None:
        """Record that ``items`` were just assigned to some user (O(N))."""
        assert self._state is not None, "fit must be called first"
        self._state.apply(items)

    def reset(self) -> None:
        """Clear all assignment counts."""
        assert self._state is not None, "fit must be called first"
        self._state.reset()

    # ------------------------------------------------------------------ #
    def scores(self, user: int) -> np.ndarray:
        """``1 / sqrt(f^A_i + 1)`` for every item (same for all users).

        Returns a fresh writable copy of the maintained score vector; the
        sequential optimizers read the zero-copy live view via :attr:`state`
        instead.
        """
        del user
        assert self._state is not None, "fit must be called first"
        return self._state.scores.copy()

    def scores_matrix(self, users: np.ndarray) -> np.ndarray:
        """Broadcast view of the current scores (read-only, user-independent)."""
        users = np.asarray(users, dtype=np.int64)
        assert self._state is not None, "fit must be called first"
        return np.broadcast_to(self._state.scores, (users.size, self.n_items))

    @staticmethod
    def snapshot_scores(frequencies: np.ndarray) -> np.ndarray:
        """Coverage scores conditioned on explicit assignment counts.

        Accepts any array of non-negative counts — a single ``(n_items,)``
        snapshot or a stacked ``(B, n_items)`` block of snapshots — and
        returns ``1 / sqrt(f + 1)`` elementwise, which is how the OSLG
        snapshot-assignment phase scores whole blocks of non-sampled users
        at once.
        """
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.size and frequencies.min() < 0:
            raise ConfigurationError("assignment frequencies cannot be negative")
        return 1.0 / np.sqrt(frequencies + 1.0)

    @staticmethod
    def gain(frequency: float) -> float:
        """Coverage gain of recommending an item already assigned ``frequency`` times."""
        if frequency < 0:
            raise ConfigurationError(f"frequency cannot be negative, got {frequency}")
        return 1.0 / float(np.sqrt(frequency + 1.0))
