"""Coverage-recommender registrations in the unified component registry."""

from __future__ import annotations

from typing import Mapping

from repro.coverage.base import CoverageRecommender
from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.random import RandomCoverage
from repro.coverage.static import StaticCoverage
from repro.registry import create, legacy_view, register

register("coverage", "rand", aliases=("random",))(RandomCoverage)
register("coverage", "stat", aliases=("static",))(StaticCoverage)
register("coverage", "dyn", aliases=("dynamic",))(DynamicCoverage)


def make_coverage(name: str, **kwargs: object) -> CoverageRecommender:
    """Instantiate a coverage recommender from its (case-insensitive) name.

    Unknown hyper-parameters raise :class:`ConfigurationError`; the reserved
    ``seed`` kwarg is threaded to Rand and dropped for the seedless models.
    """
    return create("coverage", name, **kwargs)


#: Name → factory view of the registered coverage recommenders.
COVERAGE_REGISTRY: Mapping[str, object] = legacy_view("coverage")
