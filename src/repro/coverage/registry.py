"""Name-based construction of coverage recommenders."""

from __future__ import annotations

from typing import Callable, Mapping

from repro.coverage.base import CoverageRecommender
from repro.coverage.dynamic import DynamicCoverage
from repro.coverage.random import RandomCoverage
from repro.coverage.static import StaticCoverage
from repro.exceptions import ConfigurationError

CoverageFactory = Callable[..., CoverageRecommender]

COVERAGE_REGISTRY: Mapping[str, CoverageFactory] = {
    "rand": lambda **kw: RandomCoverage(seed=kw.get("seed", None)),
    "random": lambda **kw: RandomCoverage(seed=kw.get("seed", None)),
    "stat": lambda **kw: StaticCoverage(),
    "static": lambda **kw: StaticCoverage(),
    "dyn": lambda **kw: DynamicCoverage(),
    "dynamic": lambda **kw: DynamicCoverage(),
}


def make_coverage(name: str, **kwargs: object) -> CoverageRecommender:
    """Instantiate a coverage recommender from its (case-insensitive) name."""
    key = name.strip().lower()
    if key not in COVERAGE_REGISTRY:
        raise ConfigurationError(
            f"unknown coverage recommender {name!r}; available: {sorted(COVERAGE_REGISTRY)}"
        )
    return COVERAGE_REGISTRY[key](**kwargs)
