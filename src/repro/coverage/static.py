"""Static coverage recommender: promote unpopular items with a constant gain.

``c(i) = 1 / sqrt(f^R_i + 1)`` is a monotone decreasing function of the item's
popularity in the *train* set.  The gain of recommending an item never changes
(no diminishing returns), which is why the paper finds Stat focuses on a small
subset of long-tail items and improves novelty more than coverage.
"""

from __future__ import annotations

import numpy as np

from repro.coverage.base import CoverageRecommender
from repro.data.dataset import RatingDataset


class StaticCoverage(CoverageRecommender):
    """Coverage scores inversely proportional to sqrt of train popularity."""

    name = "Stat"

    def __init__(self) -> None:
        super().__init__()
        self._scores: np.ndarray | None = None

    def fit(self, train: RatingDataset) -> "StaticCoverage":
        """Precompute ``1 / sqrt(f^R_i + 1)`` for every item."""
        popularity = train.item_popularity().astype(np.float64)
        self._scores = 1.0 / np.sqrt(popularity + 1.0)
        self._mark_fitted(train)
        return self

    @property
    def user_independent(self) -> bool:
        """One static score row serves every user."""
        return True

    def scores(self, user: int) -> np.ndarray:
        """Identical static scores for every user."""
        del user
        assert self._scores is not None, "fit must be called first"
        return self._scores

    def scores_matrix(self, users: np.ndarray) -> np.ndarray:
        """Read-only broadcast of the static row over the user block."""
        assert self._scores is not None, "fit must be called first"
        users = np.asarray(users, dtype=np.int64)
        return np.broadcast_to(self._scores, (users.size, self.n_items))
