"""Declarative pipeline specifications.

A :class:`PipelineSpec` is the complete, serializable description of one GANC
(or bare-recommender) run: which dataset/split to use, which components to
plug together (by their :mod:`repro.registry` names), and how to optimize and
evaluate.  Specs round-trip losslessly through plain dicts
(:meth:`PipelineSpec.to_config` / :meth:`PipelineSpec.from_config`) and JSON
files, which is what makes experiment configurations reviewable artifacts
instead of hand-wired Python.

Sections
--------
``dataset``
    Experiment dataset key (Table II surrogate), scale factor and split seed.
``recommender`` / ``preference`` / ``coverage``
    Component name + hyper-parameter overrides.  ``preference`` and
    ``coverage`` are optional *together*: with both present the pipeline runs
    the full GANC framework, with both absent it serves the bare accuracy
    recommender.
``ganc``
    Optimization hyper-parameters mirroring :class:`repro.ganc.GANCConfig`.
``evaluation``
    Top-N size, relevance threshold, stratified-recall β and the scoring
    block size.
``execution``
    How the batched paths run: executor backend (``serial``/``thread``/
    ``process``) and worker count.  Execution is *mechanism*, not
    modelling — results are byte-identical for every setting, so two specs
    differing only in ``execution`` describe the same experiment.

Every section's ``seed`` may be left ``None`` to inherit the spec-level
``seed``, so a single integer reproduces a whole run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ConfigurationError
from repro.ganc.kde import validate_bandwidth
from repro.parallel.executor import EXECUTOR_BACKENDS, effective_n_jobs

_MISSING = object()


def _require_mapping(value: Any, section: str) -> dict[str, Any]:
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"pipeline config section {section!r} must be a mapping, "
            f"got {type(value).__name__}"
        )
    return dict(value)


def _check_keys(config: Mapping[str, Any], allowed: tuple[str, ...], section: str) -> None:
    unknown = sorted(set(config) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in pipeline config section {section!r}; "
            f"valid keys: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class ComponentSpec:
    """One pluggable component: its registry name plus hyper-parameters."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ConfigurationError(f"component name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "params", dict(self.params))

    def to_config(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable as long as the params are)."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_config(cls, config: Mapping[str, Any] | str, *, section: str = "component") -> "ComponentSpec":
        """Rebuild from :meth:`to_config` output (a bare string means no params)."""
        if isinstance(config, str):
            return cls(name=config)
        config = _require_mapping(config, section)
        _check_keys(config, ("name", "params"), section)
        if "name" not in config:
            raise ConfigurationError(f"pipeline config section {section!r} is missing 'name'")
        return cls(name=config["name"], params=_require_mapping(config.get("params", {}), f"{section}.params"))


@dataclass(frozen=True)
class DatasetSpec:
    """Which experiment dataset to load and how to split it.

    ``path`` switches the data source from the synthetic Table II surrogate
    to an out-of-core ingest store (:mod:`repro.data.outofcore`): the store
    at that directory is opened memmap-backed and split with the ``key``'s
    ratio/seed protocol.  ``scale`` is ignored for stores (the data is
    whatever was ingested).
    """

    key: str = "ml100k"
    scale: float = 1.0
    seed: int | None = None
    path: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.key, str) or not self.key.strip():
            raise ConfigurationError(f"dataset key must be a non-empty string, got {self.key!r}")
        if self.scale <= 0:
            raise ConfigurationError(f"dataset scale must be positive, got {self.scale}")
        if self.path is not None and (not isinstance(self.path, str) or not self.path.strip()):
            raise ConfigurationError(
                f"dataset path must be a non-empty string or None, got {self.path!r}"
            )

    def to_config(self) -> dict[str, Any]:
        """Plain-dict form.

        ``path`` is emitted only when set: compiled serving artifacts pin
        the sha256 of this config (``spec_sha256``), so synthetic-dataset
        specs must serialize exactly as they did before ``path`` existed.
        """
        config: dict[str, Any] = {"key": self.key, "scale": self.scale, "seed": self.seed}
        if self.path is not None:
            config["path"] = self.path
        return config

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "DatasetSpec":
        """Rebuild from :meth:`to_config` output."""
        config = _require_mapping(config, "dataset")
        _check_keys(config, ("key", "scale", "seed", "path"), "dataset")
        return cls(
            key=config.get("key", "ml100k"),
            scale=float(config.get("scale", 1.0)),
            seed=config.get("seed"),
            path=config.get("path"),
        )


@dataclass(frozen=True)
class GANCSpec:
    """Optimization hyper-parameters, mirroring :class:`repro.ganc.GANCConfig`.

    ``sample_size`` is clipped to the train user count at fit time (as every
    experiment in the paper does), so one spec works across dataset scales.
    """

    sample_size: int = 500
    bandwidth: float | str = "silverman"
    optimizer: str = "auto"
    theta_order: str = "increasing"
    block_size: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.sample_size < 1:
            raise ConfigurationError(f"sample_size must be >= 1, got {self.sample_size}")
        validate_bandwidth(self.bandwidth, parameter="bandwidth")
        if self.optimizer not in ("auto", "oslg", "locally_greedy"):
            raise ConfigurationError(
                f"optimizer must be 'auto', 'oslg' or 'locally_greedy', got {self.optimizer!r}"
            )
        if self.theta_order not in ("increasing", "decreasing", "arbitrary"):
            raise ConfigurationError(
                f"theta_order must be 'increasing', 'decreasing' or 'arbitrary', "
                f"got {self.theta_order!r}"
            )
        if self.block_size is not None and self.block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {self.block_size}")

    def to_config(self) -> dict[str, Any]:
        """Plain-dict form."""
        return {
            "sample_size": self.sample_size,
            "bandwidth": self.bandwidth,
            "optimizer": self.optimizer,
            "theta_order": self.theta_order,
            "block_size": self.block_size,
            "seed": self.seed,
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "GANCSpec":
        """Rebuild from :meth:`to_config` output (``bandwidth`` is optional
        so spec files written before it existed still load)."""
        config = _require_mapping(config, "ganc")
        _check_keys(
            config,
            ("sample_size", "bandwidth", "optimizer", "theta_order", "block_size", "seed"),
            "ganc",
        )
        return cls(
            sample_size=int(config.get("sample_size", 500)),
            bandwidth=config.get("bandwidth", "silverman"),
            optimizer=config.get("optimizer", "auto"),
            theta_order=config.get("theta_order", "increasing"),
            block_size=config.get("block_size"),
            seed=config.get("seed"),
        )


@dataclass(frozen=True)
class EvaluationSpec:
    """How generated top-N sets are scored (Table III conditions)."""

    n: int = 5
    relevance_threshold: float = 4.0
    beta: float = 0.5
    block_size: int | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.block_size is not None and self.block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {self.block_size}")

    def to_config(self) -> dict[str, Any]:
        """Plain-dict form."""
        return {
            "n": self.n,
            "relevance_threshold": self.relevance_threshold,
            "beta": self.beta,
            "block_size": self.block_size,
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "EvaluationSpec":
        """Rebuild from :meth:`to_config` output."""
        config = _require_mapping(config, "evaluation")
        _check_keys(config, ("n", "relevance_threshold", "beta", "block_size"), "evaluation")
        return cls(
            n=int(config.get("n", 5)),
            relevance_threshold=float(config.get("relevance_threshold", 4.0)),
            beta=float(config.get("beta", 0.5)),
            block_size=config.get("block_size"),
        )


@dataclass(frozen=True)
class ExecutionSpec:
    """How the batched score paths execute (see :mod:`repro.parallel`).

    ``n_jobs=1`` always runs serially regardless of ``backend``; ``-1``
    uses one worker per CPU.  Changing this section never changes results.
    """

    backend: str = "thread"
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.backend not in EXECUTOR_BACKENDS:
            raise ConfigurationError(
                f"execution backend must be one of {list(EXECUTOR_BACKENDS)}, "
                f"got {self.backend!r}"
            )
        effective_n_jobs(self.n_jobs)

    def to_config(self) -> dict[str, Any]:
        """Plain-dict form."""
        return {"backend": self.backend, "n_jobs": self.n_jobs}

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "ExecutionSpec":
        """Rebuild from :meth:`to_config` output."""
        config = _require_mapping(config, "execution")
        _check_keys(config, ("backend", "n_jobs"), "execution")
        n_jobs = config.get("n_jobs", 1)
        if not isinstance(n_jobs, int) or isinstance(n_jobs, bool):
            raise ConfigurationError(
                f"execution n_jobs must be an integer, got {n_jobs!r}"
            )
        return cls(backend=config.get("backend", "thread"), n_jobs=n_jobs)


@dataclass(frozen=True)
class PipelineSpec:
    """Complete declarative description of one pipeline run."""

    recommender: ComponentSpec
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    preference: ComponentSpec | None = None
    coverage: ComponentSpec | None = None
    ganc: GANCSpec = field(default_factory=GANCSpec)
    evaluation: EvaluationSpec = field(default_factory=EvaluationSpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    seed: int | None = 0

    def __post_init__(self) -> None:
        if (self.preference is None) != (self.coverage is None):
            raise ConfigurationError(
                "preference and coverage must be specified together: GANC needs "
                "all three components, a bare accuracy run needs neither"
            )

    @property
    def is_ganc(self) -> bool:
        """Whether this spec describes a full GANC run (vs a bare recommender)."""
        return self.preference is not None

    def resolved_seed(self, section_seed: int | None) -> int | None:
        """A section's effective seed: its own, else the spec-level one."""
        return self.seed if section_seed is None else section_seed

    # ------------------------------------------------------------------ #
    def to_config(self) -> dict[str, Any]:
        """Nested plain-dict form; ``from_config`` inverts it exactly."""
        return {
            "seed": self.seed,
            "dataset": self.dataset.to_config(),
            "recommender": self.recommender.to_config(),
            "preference": None if self.preference is None else self.preference.to_config(),
            "coverage": None if self.coverage is None else self.coverage.to_config(),
            "ganc": self.ganc.to_config(),
            "evaluation": self.evaluation.to_config(),
            "execution": self.execution.to_config(),
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "PipelineSpec":
        """Rebuild a spec from :meth:`to_config` output (strict on unknown keys)."""
        config = _require_mapping(config, "pipeline")
        _check_keys(
            config,
            (
                "seed", "dataset", "recommender", "preference", "coverage",
                "ganc", "evaluation", "execution",
            ),
            "pipeline",
        )
        recommender = config.get("recommender", _MISSING)
        if recommender is _MISSING:
            raise ConfigurationError("pipeline config is missing the 'recommender' section")
        preference = config.get("preference")
        coverage = config.get("coverage")
        return cls(
            seed=config.get("seed", 0),
            dataset=DatasetSpec.from_config(config.get("dataset", {})),
            recommender=ComponentSpec.from_config(recommender, section="recommender"),
            preference=(
                None if preference is None
                else ComponentSpec.from_config(preference, section="preference")
            ),
            coverage=(
                None if coverage is None
                else ComponentSpec.from_config(coverage, section="coverage")
            ),
            ganc=GANCSpec.from_config(config.get("ganc", {})),
            evaluation=EvaluationSpec.from_config(config.get("evaluation", {})),
            execution=ExecutionSpec.from_config(config.get("execution", {})),
        )

    # ------------------------------------------------------------------ #
    def to_json(self, *, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_config(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, document: str) -> "PipelineSpec":
        """Parse a spec from a JSON document string."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"pipeline spec is not valid JSON: {exc}") from exc
        return cls.from_config(payload)

    def to_json_file(self, path: str | Path) -> Path:
        """Write the spec as a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def from_json_file(cls, path: str | Path) -> "PipelineSpec":
        """Load a spec previously written by :meth:`to_json_file`."""
        path = Path(path)
        try:
            document = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read pipeline spec {path}: {exc}") from exc
        return cls.from_json(document)


def ganc_spec(
    *,
    dataset: str,
    arec: str,
    theta: str,
    coverage: str = "dyn",
    n: int = 5,
    sample_size: int = 500,
    bandwidth: float | str = "silverman",
    optimizer: str = "auto",
    theta_order: str = "increasing",
    scale: float = 1.0,
    seed: int | None = 0,
    block_size: int | None = None,
    n_jobs: int = 1,
    backend: str = "thread",
    arec_params: Mapping[str, Any] | None = None,
) -> PipelineSpec:
    """Shorthand for the ``GANC(ARec, θ, CRec)`` specs the experiments build."""
    return PipelineSpec(
        dataset=DatasetSpec(key=dataset, scale=scale),
        recommender=ComponentSpec(arec, params=dict(arec_params or {})),
        preference=ComponentSpec(theta),
        coverage=ComponentSpec(coverage),
        ganc=GANCSpec(
            sample_size=sample_size,
            bandwidth=bandwidth,
            optimizer=optimizer,
            theta_order=theta_order,
            block_size=block_size,
        ),
        evaluation=EvaluationSpec(n=n, block_size=block_size),
        execution=ExecutionSpec(backend=backend, n_jobs=n_jobs),
        seed=seed,
    )
