"""Fitted-pipeline persistence: spec JSON + fitted arrays on disk.

A saved pipeline directory contains everything needed to serve identical
top-N lists without refitting any model:

``spec.json``
    The declarative :class:`~repro.pipeline.spec.PipelineSpec`.
``split.npz``
    The exact train/test interaction arrays (dense indices), so exclusion
    masks and evaluation run against the very same split.
``state.npz``
    Every fitted array of the accuracy recommender (namespaced as
    ``recommender/<attribute>``) plus the fitted preference vector ``theta``.
``manifest.json``
    Scalar component state, class names for integrity checks, and the
    format version.

Component state is harvested generically: numpy arrays and scipy sparse
matrices go to the ``.npz``, plain scalars go to the manifest, and anything
else is rejected loudly (a component holding un-persistable state should
override what it stores, not be silently half-saved).  Coverage recommenders
are *not* persisted — their fit is a cheap, deterministic state
initialization that re-runs at load time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np
from scipy import sparse

from repro.data.dataset import RatingDataset
from repro.data.split import TrainTestSplit
from repro.exceptions import ConfigurationError, DataFormatError

#: Current on-disk format version.
FORMAT_VERSION = 1

#: Attributes never persisted: the train dataset is stored once at the split
#: level, and fit diagnostics are not needed to serve.
_SKIPPED_ATTRIBUTES = frozenset({"_train", "history_", "trace_", "last_oslg_result_"})

_SPARSE_MARKER = "__sparse_csr__"
_COVERAGE_STATE_MARKER = "__coverage_state__"


# --------------------------------------------------------------------------- #
# Generic component state
# --------------------------------------------------------------------------- #
def component_state(component: object) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Split a component's instance attributes into (arrays, scalar meta)."""
    from repro.coverage.state import CoverageState

    arrays: dict[str, np.ndarray] = {}
    meta: dict[str, Any] = {}
    for name, value in vars(component).items():
        if name in _SKIPPED_ATTRIBUTES:
            continue
        if value is None:
            meta[name] = None
        elif isinstance(value, np.ndarray):
            arrays[name] = value
        elif isinstance(value, CoverageState):
            # The scores are derived; the counts fully determine the state.
            arrays[f"{name}::counts"] = np.asarray(value.counts)
            meta[name] = {_COVERAGE_STATE_MARKER: True}
        elif sparse.issparse(value):
            csr = value.tocsr()
            arrays[f"{name}::data"] = csr.data
            arrays[f"{name}::indices"] = csr.indices
            arrays[f"{name}::indptr"] = csr.indptr
            meta[name] = {_SPARSE_MARKER: True, "shape": [int(s) for s in csr.shape]}
        elif isinstance(value, np.generic):
            meta[name] = value.item()
        elif isinstance(value, (bool, int, float, str)):
            meta[name] = value
        else:
            raise ConfigurationError(
                f"cannot persist attribute {name!r} of {type(component).__name__} "
                f"(type {type(value).__name__}); add it to the skip list or "
                "store it as arrays/scalars"
            )
    return arrays, meta


def restore_component_state(
    component: object,
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, Any],
) -> None:
    """Inverse of :func:`component_state` (mutates ``component`` in place)."""
    from repro.coverage.state import CoverageState

    for name, value in meta.items():
        if isinstance(value, Mapping) and value.get(_SPARSE_MARKER):
            matrix = sparse.csr_matrix(
                (arrays[f"{name}::data"], arrays[f"{name}::indices"], arrays[f"{name}::indptr"]),
                shape=tuple(value["shape"]),
            )
            setattr(component, name, matrix)
        elif isinstance(value, Mapping) and value.get(_COVERAGE_STATE_MARKER):
            setattr(component, name, CoverageState(arrays[f"{name}::counts"]))
        else:
            setattr(component, name, value)
    for name, value in arrays.items():
        if "::" in name:
            continue  # part of a sparse matrix restored above
        setattr(component, name, value)


# --------------------------------------------------------------------------- #
# Split persistence
# --------------------------------------------------------------------------- #
def _ids_array(ids: Any) -> np.ndarray:
    array = np.asarray(list(ids))
    if array.dtype == object:
        array = array.astype(str)
    return array


def _dataset_arrays(dataset: RatingDataset, prefix: str) -> dict[str, np.ndarray]:
    return {
        f"{prefix}_users": dataset.user_indices,
        f"{prefix}_items": dataset.item_indices,
        f"{prefix}_ratings": dataset.ratings,
    }


def save_split_npz(split: TrainTestSplit, path: str | Path) -> Path:
    """Write a train/test split as one compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        **_dataset_arrays(split.train, "train"),
        **_dataset_arrays(split.test, "test"),
        "n_users": np.int64(split.train.n_users),
        "n_items": np.int64(split.train.n_items),
        "user_ids": _ids_array(split.train.user_ids),
        "item_ids": _ids_array(split.train.item_ids),
        "train_name": np.str_(split.train.name),
        "test_name": np.str_(split.test.name),
    }
    np.savez_compressed(path, **payload)
    return path


def load_split_npz(path: str | Path) -> TrainTestSplit:
    """Load a split previously written by :func:`save_split_npz`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as payload:
            n_users = int(payload["n_users"])
            n_items = int(payload["n_items"])
            user_ids = payload["user_ids"].tolist()
            item_ids = payload["item_ids"].tolist()

            def build(prefix: str, name: str) -> RatingDataset:
                """Rebuild one side of the split from its prefixed arrays."""
                return RatingDataset(
                    payload[f"{prefix}_users"],
                    payload[f"{prefix}_items"],
                    payload[f"{prefix}_ratings"],
                    n_users=n_users,
                    n_items=n_items,
                    user_ids=user_ids,
                    item_ids=item_ids,
                    name=name,
                )

            return TrainTestSplit(
                train=build("train", str(payload["train_name"])),
                test=build("test", str(payload["test_name"])),
            )
    except OSError as exc:
        raise DataFormatError(f"cannot read split file {path}: {exc}") from exc
    except KeyError as exc:
        raise DataFormatError(f"{path} is missing split array {exc}") from exc


# --------------------------------------------------------------------------- #
# JSON helpers
# --------------------------------------------------------------------------- #
def write_json(payload: Mapping[str, Any], path: str | Path) -> Path:
    """Write a JSON document with stable key order."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def read_json(path: str | Path) -> dict[str, Any]:
    """Read a JSON document, normalizing failures onto DataFormatError."""
    path = Path(path)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise DataFormatError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"{path} is not valid JSON: {exc}") from exc
