"""The :class:`Pipeline` object: a spec brought to life.

``Pipeline`` composes the registry-built components behind a
``fit → recommend / recommend_all → evaluate`` lifecycle and adds
train-once/serve-many persistence (:meth:`Pipeline.save` /
:meth:`Pipeline.load`).  All scoring goes through the batched paths: GANC's
blocked assignment for framework runs, :meth:`Recommender.recommend_all`
for bare accuracy runs.

The experiment harness reuses one fitted accuracy recommender (and one
estimated preference vector) across many GANC configurations; pass such
prebuilt components to the constructor and :meth:`fit` will plug them in
instead of building fresh ones from the spec.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.data.split import TrainTestSplit
from repro.evaluation.evaluator import EvaluationRun, Evaluator
from repro.exceptions import ConfigurationError, DataFormatError, NotFittedError
from repro.ganc.framework import GANC, GANCConfig, PreferenceLike
from repro.parallel.executor import Executor, resolve_executor
from repro.pipeline.persistence import (
    FORMAT_VERSION,
    component_state,
    load_split_npz,
    read_json,
    restore_component_state,
    save_split_npz,
    write_json,
)
from repro.pipeline.spec import PipelineSpec
from repro.preferences.base import PreferenceModel, PreferenceResult
from repro.recommenders.base import FittedTopN, Recommender
from repro.registry import create

_SPEC_FILE = "spec.json"
_SPLIT_FILE = "split.npz"
_STATE_FILE = "state.npz"
_MANIFEST_FILE = "manifest.json"
_RECOMMENDER_PREFIX = "recommender."


class Pipeline:
    """A declarative GANC (or bare-recommender) run with a fit/serve lifecycle.

    Parameters
    ----------
    spec:
        The declarative configuration.
    recommender, preference, coverage:
        Optional prebuilt components overriding registry construction.  A
        fitted recommender is reused as-is when its train data matches;
        ``preference`` may be a model, a fitted
        :class:`~repro.preferences.base.PreferenceResult`, or a raw θ array.
    """

    def __init__(
        self,
        spec: PipelineSpec,
        *,
        recommender: Recommender | None = None,
        preference: PreferenceLike | None = None,
        coverage: Any | None = None,
    ) -> None:
        self.spec = spec
        self._injected_recommender = recommender
        self._injected_preference = preference
        self._injected_coverage = coverage
        self._recommender: Recommender | None = None
        self._model: GANC | None = None
        self._split: TrainTestSplit | None = None
        self._evaluator: Evaluator | None = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(cls, config: dict[str, Any]) -> "Pipeline":
        """Build an (unfitted) pipeline from a plain-dict spec."""
        return cls(PipelineSpec.from_config(config))

    @classmethod
    def from_json_file(cls, path: str | Path) -> "Pipeline":
        """Build an (unfitted) pipeline from a spec JSON file."""
        return cls(PipelineSpec.from_json_file(path))

    def _component_kwargs(self, params: dict[str, Any]) -> dict[str, Any]:
        kwargs = dict(params)
        if self.spec.seed is not None:
            kwargs.setdefault("seed", self.spec.seed)
        return kwargs

    def _build_recommender(self) -> Recommender:
        if self._injected_recommender is not None:
            return self._injected_recommender
        section = self.spec.recommender
        return create(
            "recommender",
            section.name,
            scale_hint=self.spec.dataset.scale,
            **self._component_kwargs(dict(section.params)),
        )

    def _build_preference(self) -> PreferenceLike:
        if self._injected_preference is not None:
            return self._injected_preference
        section = self.spec.preference
        assert section is not None
        return create("preference", section.name, **self._component_kwargs(dict(section.params)))

    def _build_coverage(self) -> Any:
        if self._injected_coverage is not None:
            return self._injected_coverage
        section = self.spec.coverage
        assert section is not None
        return create("coverage", section.name, **self._component_kwargs(dict(section.params)))

    def _ganc_config(self, n_users: int) -> GANCConfig:
        section = self.spec.ganc
        execution = self.spec.execution
        return GANCConfig(
            sample_size=max(1, min(section.sample_size, n_users)),
            bandwidth=section.bandwidth,
            optimizer=section.optimizer,  # type: ignore[arg-type]
            theta_order=section.theta_order,  # type: ignore[arg-type]
            seed=self.spec.resolved_seed(section.seed),
            block_size=section.block_size,
            n_jobs=execution.n_jobs,
            backend=execution.backend,
        )

    def _executor(self) -> Executor:
        """The executor declared by the spec's ``execution`` section."""
        execution = self.spec.execution
        return resolve_executor(None, execution.n_jobs, execution.backend)

    def set_execution(self, execution: Any) -> "Pipeline":
        """Swap the spec's ``execution`` section (mechanism only, results unchanged).

        Also propagates to an already-fitted GANC model and a cached
        evaluator, so overriding ``n_jobs`` on a loaded pipeline affects
        serving immediately — no refit involved.
        """
        self.spec = replace(self.spec, execution=execution)
        if self._model is not None:
            self._model.config = replace(
                self._model.config, n_jobs=execution.n_jobs, backend=execution.backend
            )
        self._evaluator = None
        return self

    def set_ganc(self, ganc: Any) -> "Pipeline":
        """Swap the spec's ``ganc`` section (optimizer knobs, not components).

        Unlike :meth:`set_execution` this *does* change what is computed —
        sample size, KDE bandwidth and θ ordering are modelling choices —
        but none of it is baked in at fit time: an already-fitted GANC model
        gets a rebuilt config (with ``sample_size`` clipped to the fitted
        user count, as at fit time) and the next :meth:`recommend_all`
        optimizes under the new knobs without any refit.
        """
        self.spec = replace(self.spec, ganc=ganc)
        if self._model is not None:
            assert self._split is not None
            self._model.config = self._ganc_config(self._split.train.n_users)
        return self

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def fit(self, data: TrainTestSplit | None = None) -> "Pipeline":
        """Build the spec'd components and fit them on the (or a) split.

        ``data=None`` loads the spec's experiment dataset; passing a
        :class:`TrainTestSplit` fits on existing data instead (the experiment
        harness does this to share one split across many pipelines).
        """
        if data is None:
            from repro.experiments.datasets import load_experiment_split

            _, split = load_experiment_split(
                self.spec.dataset.key,
                scale=self.spec.dataset.scale,
                seed=self.spec.resolved_seed(self.spec.dataset.seed),
                path=self.spec.dataset.path,
            )
        elif isinstance(data, TrainTestSplit):
            split = data
        else:
            raise ConfigurationError(
                "Pipeline.fit expects a TrainTestSplit or None (to load the "
                f"spec's dataset), got {type(data).__name__}; split raw "
                "datasets with repro.data.split first"
            )

        recommender = self._build_recommender()
        if self.spec.is_ganc:
            model = GANC(
                recommender,
                self._build_preference(),
                self._build_coverage(),
                config=self._ganc_config(split.train.n_users),
            )
            model.fit(split.train)
            self._model = model
        else:
            if not recommender.is_fitted or recommender.train_data is not split.train:
                recommender.fit(split.train)
            self._model = None
        self._recommender = recommender
        self._split = split
        self._evaluator = None
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._split is not None

    def _check_fitted(self) -> None:
        if self._split is None:
            raise NotFittedError("Pipeline must be fitted before it can be used")

    @property
    def split(self) -> TrainTestSplit:
        """The split the pipeline was fitted on."""
        self._check_fitted()
        assert self._split is not None
        return self._split

    @property
    def recommender(self) -> Recommender:
        """The (fitted) accuracy recommender."""
        self._check_fitted()
        assert self._recommender is not None
        return self._recommender

    @property
    def model(self) -> GANC | None:
        """The fitted GANC facade, or ``None`` for bare-recommender specs."""
        self._check_fitted()
        return self._model

    @property
    def algorithm(self) -> str:
        """Label used in reports: the GANC template or the recommender name."""
        self._check_fitted()
        if self._model is not None:
            return self._model.template
        return type(self.recommender).__name__

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def recommend_all(self, n: int | None = None, *, block_size: int | None = None) -> FittedTopN:
        """Top-``n`` sets for every user (``n`` defaults to the spec's).

        ``block_size`` overrides the spec's scoring block size for this call
        only (for GANC runs it is swapped into the optimizer config for the
        duration of the call).
        """
        self._check_fitted()
        n = self.spec.evaluation.n if n is None else int(n)
        if self._model is not None:
            if block_size is None or block_size == self._model.config.block_size:
                return self._model.recommend_all(n)
            original = self._model.config
            self._model.config = replace(original, block_size=block_size)
            try:
                return self._model.recommend_all(n)
            finally:
                self._model.config = original
        block = block_size if block_size is not None else self.spec.evaluation.block_size
        return self.recommender.recommend_all(n, block_size=block, executor=self._executor())

    def recommend(self, users: int | np.ndarray, n: int | None = None) -> np.ndarray:
        """Top-``n`` items for one user (1-D) or a block of users (2-D, -1 padded).

        For dynamic coverage this evaluates users against the *current*
        coverage state; :meth:`recommend_all` optimizes the full collection.
        """
        self._check_fitted()
        n = self.spec.evaluation.n if n is None else int(n)
        single = np.isscalar(users) or (isinstance(users, np.ndarray) and users.ndim == 0)
        user_block = np.atleast_1d(np.asarray(users, dtype=np.int64))
        if self._model is not None:
            out = np.full((user_block.size, n), -1, dtype=np.int64)
            for row, user in enumerate(user_block):
                items = self._model.recommend(int(user), n)
                out[row, : items.size] = items
        else:
            out = self.recommender.recommend_block(user_block, n)
        return out[0] if single else out

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    @property
    def evaluator(self) -> Evaluator:
        """Evaluator bound to the fitted split with the spec's conditions."""
        self._check_fitted()
        if self._evaluator is None:
            section = self.spec.evaluation
            execution = self.spec.execution
            self._evaluator = Evaluator(
                self.split,
                n=section.n,
                relevance_threshold=section.relevance_threshold,
                beta=section.beta,
                block_size=section.block_size,
                n_jobs=execution.n_jobs,
                backend=execution.backend,
            )
        return self._evaluator

    def evaluate(
        self,
        recommendations: FittedTopN | dict[int, np.ndarray] | None = None,
        *,
        algorithm: str | None = None,
        include_ndcg: bool = False,
    ) -> EvaluationRun:
        """Score recommendations (generated via :meth:`recommend_all` if omitted)."""
        if recommendations is None:
            recommendations = self.recommend_all()
        return self.evaluator.evaluate_recommendations(
            recommendations,
            algorithm=algorithm or self.algorithm,
            include_ndcg=include_ndcg,
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def _preference_name(self) -> str:
        if self._model is None:
            return ""
        source = self._model._preference_input
        if isinstance(source, PreferenceModel):
            return source.name
        if isinstance(source, PreferenceResult):
            return source.model_name
        return "theta"

    def save(self, directory: str | Path) -> Path:
        """Write spec JSON + split + fitted arrays; serve later without refitting."""
        self._check_fitted()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)

        self.spec.to_json_file(directory / _SPEC_FILE)
        save_split_npz(self.split, directory / _SPLIT_FILE)

        arrays, recommender_meta = component_state(self.recommender)
        state = {f"{_RECOMMENDER_PREFIX}{name}": value for name, value in arrays.items()}
        manifest: dict[str, Any] = {
            "format": FORMAT_VERSION,
            "mode": "ganc" if self._model is not None else "recommender",
            "algorithm": self.algorithm,
            "recommender": {
                "class": type(self.recommender).__name__,
                "meta": recommender_meta,
            },
        }
        if self._model is not None:
            state["theta"] = self._model.theta
            manifest["preference"] = {"name": self._preference_name()}
        np.savez_compressed(directory / _STATE_FILE, **state)
        write_json(manifest, directory / _MANIFEST_FILE)
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "Pipeline":
        """Rebuild a fitted pipeline saved by :meth:`save` (no model refits)."""
        directory = Path(directory)
        spec = PipelineSpec.from_json_file(directory / _SPEC_FILE)
        manifest = read_json(directory / _MANIFEST_FILE)
        if manifest.get("format") != FORMAT_VERSION:
            raise DataFormatError(
                f"unsupported pipeline format {manifest.get('format')!r} in "
                f"{directory} (expected {FORMAT_VERSION})"
            )
        split = load_split_npz(directory / _SPLIT_FILE)

        with np.load(directory / _STATE_FILE, allow_pickle=False) as payload:
            state = {name: payload[name] for name in payload.files}

        pipeline = cls(spec)
        recommender = pipeline._build_recommender()
        expected_cls = manifest.get("recommender", {}).get("class")
        if expected_cls and type(recommender).__name__ != expected_cls:
            raise DataFormatError(
                f"saved pipeline was fitted with {expected_cls} but the spec "
                f"builds {type(recommender).__name__}"
            )
        arrays = {
            name[len(_RECOMMENDER_PREFIX):]: value
            for name, value in state.items()
            if name.startswith(_RECOMMENDER_PREFIX)
        }
        restore_component_state(
            recommender, arrays, manifest.get("recommender", {}).get("meta", {})
        )
        recommender._mark_fitted(split.train)

        pipeline._injected_recommender = recommender
        if spec.is_ganc:
            if "theta" not in state:
                raise DataFormatError(f"{directory} is missing the fitted theta vector")
            pipeline._injected_preference = PreferenceResult(
                theta=state["theta"],
                model_name=manifest.get("preference", {}).get("name", "theta"),
            )
        return pipeline.fit(split)
