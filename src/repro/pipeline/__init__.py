"""Unified pipeline API: declarative specs, one registry, persistable runs.

The paper frames GANC as a generic framework; this package is that genericity
as an API.  A :class:`PipelineSpec` declares *what* to run (dataset, accuracy
recommender, preference model, coverage strategy, optimization and evaluation
settings) in a JSON-round-trippable form; a :class:`Pipeline` executes it
behind ``fit → recommend_all → evaluate`` and persists fitted state with
``save``/``load`` so serving never refits:

>>> from repro.pipeline import Pipeline, ganc_spec
>>> spec = ganc_spec(dataset="ml100k", arec="psvd100", theta="thetaG",
...                  coverage="dyn", scale=0.3, seed=0)
>>> pipeline = Pipeline(spec).fit()
>>> run = pipeline.evaluate(pipeline.recommend_all())
"""

from repro.pipeline.pipeline import Pipeline
from repro.pipeline.spec import (
    ComponentSpec,
    DatasetSpec,
    EvaluationSpec,
    ExecutionSpec,
    GANCSpec,
    PipelineSpec,
    ganc_spec,
)

__all__ = [
    "Pipeline",
    "PipelineSpec",
    "ComponentSpec",
    "DatasetSpec",
    "EvaluationSpec",
    "ExecutionSpec",
    "GANCSpec",
    "ganc_spec",
]
