"""Facade over the paper's primary contribution.

``repro.core`` re-exports the pieces that make up the paper's contribution —
the long-tail preference estimators, the GANC framework, and the OSLG
optimizer — so downstream code that only cares about the headline algorithm
can depend on a single, stable module:

>>> from repro.core import GANC, GANCConfig, GeneralizedPreference, DynamicCoverage

Substrates (datasets, base recommenders, metrics, baselines) live in their own
subpackages and are intentionally not re-exported here.
"""

from repro.coverage import (
    CoverageState,
    DeltaSnapshots,
    DynamicCoverage,
    RandomCoverage,
    StaticCoverage,
)
from repro.ganc import (
    GANC,
    GANCConfig,
    GaussianKDE,
    LocallyGreedyOptimizer,
    OSLGOptimizer,
    OSLGResult,
    UserValueFunction,
    combined_item_scores,
)
from repro.preferences import (
    ActivityPreference,
    ConstantPreference,
    GeneralizedPreference,
    NormalizedLongTailPreference,
    PreferenceResult,
    RandomPreference,
    TfidfPreference,
)

__all__ = [
    "GANC",
    "GANCConfig",
    "GaussianKDE",
    "LocallyGreedyOptimizer",
    "OSLGOptimizer",
    "OSLGResult",
    "UserValueFunction",
    "combined_item_scores",
    "DynamicCoverage",
    "RandomCoverage",
    "StaticCoverage",
    "CoverageState",
    "DeltaSnapshots",
    "ActivityPreference",
    "ConstantPreference",
    "GeneralizedPreference",
    "NormalizedLongTailPreference",
    "PreferenceResult",
    "RandomPreference",
    "TfidfPreference",
]
