"""Setuptools shim for environments without PEP 517 build isolation.

The canonical project metadata lives in ``pyproject.toml``; this file only
enables ``pip install -e . --no-use-pep517`` on offline machines that lack the
``wheel`` package required by editable PEP 660 builds.
"""

from setuptools import setup

setup()
